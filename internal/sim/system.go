package sim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/stbus"
	"repro/internal/trace"
)

// ErrInvalidConfig is wrapped around every configuration validation
// failure, letting callers distinguish "the config is wrong" from
// runtime failures with errors.Is across layer boundaries.
var ErrInvalidConfig = errors.New("sim: invalid configuration")

// Config describes a complete MPSoC simulation: the platform (two
// interconnect directions, memory timing) plus one program per
// initiator core.
type Config struct {
	NumInitiators int
	NumTargets    int
	// Programs[i] is the op sequence core i executes (once).
	Programs [][]Op
	// Req configures the initiator→target crossbar (receivers are
	// targets); Resp the target→initiator crossbar (receivers are
	// initiators).
	Req, Resp *stbus.Config
	// MemWait is the target service latency in cycles between the end
	// of the request phase and the start of the response phase.
	MemWait int64
	// ReqCycles is the request-phase bus occupancy of a read (the
	// address beat); writes occupy ReqCycles+Burst.
	ReqCycles int64
	// LockRetry is the base back-off in cycles between semaphore
	// acquisition attempts.
	LockRetry int64
	// SemTargets lists target indices that behave as semaphore devices.
	SemTargets []int
	// PostedWrites makes writes non-blocking (STbus posted operations):
	// the core continues immediately after handing the write to its
	// port, bounded by MaxOutstandingWrites in-flight writes per core.
	PostedWrites bool
	// MaxOutstandingWrites is the per-core posted-write FIFO depth
	// (default 4; only used with PostedWrites).
	MaxOutstandingWrites int
	// MemWaitOf optionally overrides MemWait per target (length
	// NumTargets), modeling heterogeneous memory service latencies.
	MemWaitOf []int64
	// Horizon is the simulated length in cycles.
	Horizon int64
	// CollectTrace enables functional traffic trace collection.
	CollectTrace bool
}

// Validate checks the configuration. Every failure wraps
// ErrInvalidConfig.
func (c *Config) Validate() error {
	if err := c.validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	return nil
}

func (c *Config) validate() error {
	if c.NumInitiators <= 0 || c.NumTargets <= 0 {
		return errors.New("sim: need at least one initiator and one target")
	}
	if len(c.Programs) != c.NumInitiators {
		return fmt.Errorf("sim: %d programs for %d initiators", len(c.Programs), c.NumInitiators)
	}
	if c.Horizon <= 0 {
		return errors.New("sim: Horizon must be positive")
	}
	if c.MemWait < 0 || c.ReqCycles <= 0 {
		return errors.New("sim: MemWait must be >= 0 and ReqCycles > 0")
	}
	if c.MemWaitOf != nil {
		if len(c.MemWaitOf) != c.NumTargets {
			return fmt.Errorf("sim: MemWaitOf has %d entries, want %d", len(c.MemWaitOf), c.NumTargets)
		}
		for t, w := range c.MemWaitOf {
			if w < 0 {
				return fmt.Errorf("sim: MemWaitOf[%d] is negative", t)
			}
		}
	}
	if c.MaxOutstandingWrites < 0 {
		return errors.New("sim: MaxOutstandingWrites must be >= 0")
	}
	if c.Req == nil || c.Resp == nil {
		return errors.New("sim: both interconnect directions must be configured")
	}
	if c.Req.NumSenders != c.NumInitiators || c.Req.NumReceivers != c.NumTargets {
		return fmt.Errorf("sim: request fabric is %d→%d, want %d→%d",
			c.Req.NumSenders, c.Req.NumReceivers, c.NumInitiators, c.NumTargets)
	}
	if c.Resp.NumSenders != c.NumTargets || c.Resp.NumReceivers != c.NumInitiators {
		return fmt.Errorf("sim: response fabric is %d→%d, want %d→%d",
			c.Resp.NumSenders, c.Resp.NumReceivers, c.NumTargets, c.NumInitiators)
	}
	for i, prog := range c.Programs {
		for pc, op := range prog {
			switch op.Kind {
			case OpRead, OpWrite:
				if op.Burst <= 0 {
					return fmt.Errorf("sim: core %d op %d: burst must be positive", i, pc)
				}
				fallthrough
			case OpLock, OpUnlock, OpBarrier:
				if op.Target < 0 || op.Target >= c.NumTargets {
					return fmt.Errorf("sim: core %d op %d: target %d out of range", i, pc, op.Target)
				}
			case OpCompute:
				if op.Cycles < 0 {
					return fmt.Errorf("sim: core %d op %d: negative compute", i, pc)
				}
			}
		}
	}
	return nil
}

// Result is what a simulation run produces.
type Result struct {
	// Latency holds one sample per completed transaction (reads,
	// writes, and the synchronization accesses).
	Latency *stats.Recorder
	// ReqTrace / RespTrace are the functional traces of the two
	// directions (nil unless CollectTrace was set).
	ReqTrace, RespTrace *trace.Trace
	// ReqUtil / RespUtil are per-bus occupancy fractions.
	ReqUtil, RespUtil []float64
	// ReqGrants / RespGrants count transfers granted per bus.
	ReqGrants, RespGrants []int64
	// ReqBeats / RespBeats are total delivered data beats per
	// direction; divided by EndCycle they give aggregate throughput in
	// words per cycle (the metric a full crossbar maximizes).
	ReqBeats, RespBeats int64
	// Completed counts cores that ran their program to completion
	// within the horizon.
	Completed int
	// EndCycle is the cycle the simulation stopped at.
	EndCycle int64
}

// system is the runtime state of one simulation.
type system struct {
	cfg   *Config
	eng   *Engine
	req   *stbus.Fabric
	resp  *stbus.Fabric
	rec   *stats.Recorder
	cores []*core
	sems  map[int]*semaphore
	bars  map[int]*barrier

	reqEvents, respEvents []trace.Event
}

type core struct {
	id      int
	program []Op
	pc      int
	sys     *system
	done    bool
	// Posted-write state: remaining FIFO credits and whether the core
	// is parked waiting for one.
	writeCredits   int
	awaitingCredit bool
}

type semaphore struct {
	held  bool
	owner int
}

type barrier struct {
	arrived int
	waiters []func()
}

// Run executes the simulation described by cfg and returns its results.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run with cooperative cancellation: the event loop polls
// ctx and a cancellation aborts the simulation with an error wrapping
// ErrCanceled. A completed run is unaffected by the context.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctx, span := obs.Start(ctx, "sim.run")
	defer span.End()
	span.SetInt("initiators", int64(cfg.NumInitiators))
	span.SetInt("targets", int64(cfg.NumTargets))
	span.SetInt("horizon", cfg.Horizon)
	metRuns.Inc()
	if cfg.LockRetry <= 0 {
		cfg.LockRetry = 16
	}
	if cfg.PostedWrites && cfg.MaxOutstandingWrites == 0 {
		cfg.MaxOutstandingWrites = 4
	}
	eng := NewEngine()
	req, err := stbus.NewFabric(cfg.Req, eng)
	if err != nil {
		return nil, fmt.Errorf("sim: request fabric: %w", err)
	}
	resp, err := stbus.NewFabric(cfg.Resp, eng)
	if err != nil {
		return nil, fmt.Errorf("sim: response fabric: %w", err)
	}
	s := &system{
		cfg:  &cfg,
		eng:  eng,
		req:  req,
		resp: resp,
		rec:  stats.NewRecorder(),
		sems: map[int]*semaphore{},
		bars: map[int]*barrier{},
	}
	for _, t := range cfg.SemTargets {
		s.sems[t] = &semaphore{}
	}
	if cfg.CollectTrace {
		req.Probe = func(ev trace.Event) { s.reqEvents = append(s.reqEvents, ev) }
		resp.Probe = func(ev trace.Event) { s.respEvents = append(s.respEvents, ev) }
	}
	for i := 0; i < cfg.NumInitiators; i++ {
		c := &core{id: i, program: cfg.Programs[i], sys: s, writeCredits: cfg.MaxOutstandingWrites}
		s.cores = append(s.cores, c)
		eng.At(0, c.step)
	}
	end, err := eng.RunCtx(ctx, cfg.Horizon)
	if err != nil {
		return nil, err
	}
	metCycles.Add(end)
	span.SetInt("end_cycle", end)

	res := &Result{
		Latency:    s.rec,
		ReqUtil:    req.BusUtilization(end),
		RespUtil:   resp.BusUtilization(end),
		ReqGrants:  req.Grants(),
		RespGrants: resp.Grants(),
		ReqBeats:   req.DataBeats(),
		RespBeats:  resp.DataBeats(),
		EndCycle:   end,
	}
	for _, c := range s.cores {
		if c.done {
			res.Completed++
		}
	}
	if cfg.CollectTrace {
		res.ReqTrace = buildTrace(s.reqEvents, cfg.NumInitiators, cfg.NumTargets, end)
		res.RespTrace = buildTrace(s.respEvents, cfg.NumTargets, cfg.NumInitiators, end)
	}
	return res, nil
}

// Throughput returns the aggregate delivered words per cycle over both
// directions.
func (r *Result) Throughput() float64 {
	if r.EndCycle == 0 {
		return 0
	}
	return float64(r.ReqBeats+r.RespBeats) / float64(r.EndCycle)
}

// buildTrace clamps collected events to the horizon and wraps them.
func buildTrace(events []trace.Event, numSenders, numReceivers int, horizon int64) *trace.Trace {
	kept := make([]trace.Event, 0, len(events))
	for _, e := range events {
		if e.Start >= horizon {
			continue
		}
		if e.End() > horizon {
			e.Len = horizon - e.Start
		}
		kept = append(kept, e)
	}
	return &trace.Trace{
		NumSenders:   numSenders,
		NumReceivers: numReceivers,
		Horizon:      horizon,
		Events:       kept,
	}
}

// step advances the core's program until it blocks or finishes.
func (c *core) step() {
	s := c.sys
	for c.pc < len(c.program) {
		op := c.program[c.pc]
		switch op.Kind {
		case OpCompute:
			c.pc++
			if op.Cycles > 0 {
				s.eng.After(op.Cycles, c.step)
				return
			}
		case OpRead:
			c.pc++
			s.startRead(c, op)
			return
		case OpWrite:
			if s.cfg.PostedWrites {
				if c.writeCredits == 0 {
					c.awaitingCredit = true
					return // resumed when an ack frees a credit
				}
				c.writeCredits--
				c.pc++
				s.startWrite(c, op, false)
				continue
			}
			c.pc++
			s.startWrite(c, op, true)
			return
		case OpLock:
			s.tryLock(c, op)
			return
		case OpUnlock:
			c.pc++
			s.doUnlock(c, op)
			return
		case OpBarrier:
			c.pc++
			s.arrive(c, op)
			return
		default:
			panic(fmt.Sprintf("sim: unknown op kind %v", op.Kind))
		}
	}
	c.done = true
}

// memWait returns the service latency of a target.
func (s *system) memWait(target int) int64 {
	if s.cfg.MemWaitOf != nil {
		return s.cfg.MemWaitOf[target]
	}
	return s.cfg.MemWait
}

// startRead performs a blocking read transaction: request phase on the
// initiator→target crossbar, the target's service latency, response
// phase on the target→initiator crossbar, then the core resumes.
func (s *system) startRead(c *core, op Op) {
	issue := s.eng.Now()
	respLen := op.Burst
	s.req.Submit(&stbus.Transfer{
		Sender:   c.id,
		Receiver: op.Target,
		Cycles:   s.cfg.ReqCycles,
		Critical: op.Critical,
		Done: func(reqDone int64) {
			s.eng.At(reqDone+s.memWait(op.Target), func() {
				s.resp.Submit(&stbus.Transfer{
					Sender:   op.Target,
					Receiver: c.id,
					Cycles:   respLen,
					Critical: op.Critical,
					Done: func(respDone int64) {
						s.rec.Add(stats.Sample{
							Latency:   respDone - issue,
							Packet:    respDone - respLen + 1 - issue,
							Initiator: c.id,
							Target:    op.Target,
							Critical:  op.Critical,
						})
						c.step()
					},
				})
			})
		},
	})
}

// startWrite performs a write transaction (address + data beats, then
// a one-beat acknowledgement). With blocking set the core resumes when
// the acknowledgement arrives; otherwise (a posted write) the ack only
// returns a FIFO credit, unparking the core if it was waiting for one.
func (s *system) startWrite(c *core, op Op, blocking bool) {
	issue := s.eng.Now()
	s.req.Submit(&stbus.Transfer{
		Sender:   c.id,
		Receiver: op.Target,
		Cycles:   s.cfg.ReqCycles + op.Burst,
		Critical: op.Critical,
		Done: func(reqDone int64) {
			s.eng.At(reqDone+s.memWait(op.Target), func() {
				s.resp.Submit(&stbus.Transfer{
					Sender:   op.Target,
					Receiver: c.id,
					Cycles:   1,
					Critical: op.Critical,
					Done: func(respDone int64) {
						s.rec.Add(stats.Sample{
							Latency:   respDone - issue,
							Packet:    respDone - issue,
							Initiator: c.id,
							Target:    op.Target,
							Critical:  op.Critical,
						})
						if blocking {
							c.step()
							return
						}
						c.writeCredits++
						if c.awaitingCredit {
							c.awaitingCredit = false
							c.step()
						}
					},
				})
			})
		},
	})
}

// tryLock performs one read-modify-write attempt on a semaphore target
// and either advances past the OpLock or backs off and retries. The
// acquisition decision happens when the request is serviced at the
// device, so attempts arbitrated earlier on the semaphore's bus win.
func (s *system) tryLock(c *core, op Op) {
	sem := s.sems[op.Target]
	if sem == nil {
		panic(fmt.Sprintf("sim: core %d locks target %d which is not a semaphore", c.id, op.Target))
	}
	issue := s.eng.Now()
	s.req.Submit(&stbus.Transfer{
		Sender:   c.id,
		Receiver: op.Target,
		Cycles:   s.cfg.ReqCycles,
		Critical: op.Critical,
		Done: func(reqDone int64) {
			s.eng.At(reqDone+s.memWait(op.Target), func() {
				acquired := !sem.held
				if acquired {
					sem.held = true
					sem.owner = c.id
				}
				s.resp.Submit(&stbus.Transfer{
					Sender:   op.Target,
					Receiver: c.id,
					Cycles:   1,
					Critical: op.Critical,
					Done: func(respDone int64) {
						s.rec.Add(stats.Sample{
							Latency:   respDone - issue,
							Packet:    respDone - issue,
							Initiator: c.id,
							Target:    op.Target,
							Critical:  op.Critical,
						})
						if acquired {
							c.pc++
							c.step()
							return
						}
						// Staggered back-off keeps deterministic
						// retries from livelocking in lockstep.
						s.eng.After(s.cfg.LockRetry+int64(c.id), c.step)
					},
				})
			})
		},
	})
}

// doUnlock releases the semaphore with a one-word write.
func (s *system) doUnlock(c *core, op Op) {
	sem := s.sems[op.Target]
	if sem == nil {
		panic(fmt.Sprintf("sim: core %d unlocks target %d which is not a semaphore", c.id, op.Target))
	}
	issue := s.eng.Now()
	s.req.Submit(&stbus.Transfer{
		Sender:   c.id,
		Receiver: op.Target,
		Cycles:   s.cfg.ReqCycles + 1,
		Critical: op.Critical,
		Done: func(reqDone int64) {
			s.eng.At(reqDone+s.memWait(op.Target), func() {
				if sem.held && sem.owner == c.id {
					sem.held = false
				}
				s.resp.Submit(&stbus.Transfer{
					Sender:   op.Target,
					Receiver: c.id,
					Cycles:   1,
					Critical: op.Critical,
					Done: func(respDone int64) {
						s.rec.Add(stats.Sample{
							Latency:   respDone - issue,
							Packet:    respDone - issue,
							Initiator: c.id,
							Target:    op.Target,
							Critical:  op.Critical,
						})
						c.step()
					},
				})
			})
		},
	})
}

// arrive signals the interrupt device (a one-word write) and blocks the
// core until every initiator has arrived at the same barrier ID.
func (s *system) arrive(c *core, op Op) {
	issue := s.eng.Now()
	s.req.Submit(&stbus.Transfer{
		Sender:   c.id,
		Receiver: op.Target,
		Cycles:   s.cfg.ReqCycles + 1,
		Critical: op.Critical,
		Done: func(reqDone int64) {
			s.eng.At(reqDone+s.memWait(op.Target), func() {
				s.resp.Submit(&stbus.Transfer{
					Sender:   op.Target,
					Receiver: c.id,
					Cycles:   1,
					Critical: op.Critical,
					Done: func(respDone int64) {
						s.rec.Add(stats.Sample{
							Latency:   respDone - issue,
							Packet:    respDone - issue,
							Initiator: c.id,
							Target:    op.Target,
							Critical:  op.Critical,
						})
						b := s.bars[op.Barrier]
						if b == nil {
							b = &barrier{}
							s.bars[op.Barrier] = b
						}
						b.arrived++
						b.waiters = append(b.waiters, c.step)
						if b.arrived == s.cfg.NumInitiators {
							for _, w := range b.waiters {
								s.eng.After(1, w)
							}
							delete(s.bars, op.Barrier)
						}
					},
				})
			})
		},
	})
}

package sim

import (
	"context"
	"errors"
	"testing"
)

func TestEngineRunCtxCanceled(t *testing.T) {
	eng := NewEngine()
	// A self-rescheduling tick generates one event per cycle, so the
	// event loop is guaranteed to cross a cancellation checkpoint long
	// before the horizon.
	var tick func()
	tick = func() { eng.At(eng.Now()+1, tick) }
	eng.At(0, tick)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	end, err := eng.RunCtx(ctx, 1<<40)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want to also wrap context.Canceled", err)
	}
	if end <= 0 || end >= 1<<40 {
		t.Errorf("clock stopped at %d, want mid-run", end)
	}
}

func TestEngineRunCtxBackgroundCompletes(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.At(5, func() { fired = true })
	end, err := eng.RunCtx(context.Background(), 10)
	if err != nil || end != 10 || !fired {
		t.Errorf("RunCtx = (%d, %v), fired=%v; want (10, nil, true)", end, err, fired)
	}
}

func TestRunCtxCanceledSystem(t *testing.T) {
	// A long single-core program: enough bus events to reach the
	// event-loop cancellation checkpoint.
	var prog []Op
	for i := 0; i < 3000; i++ {
		prog = append(prog, Read(0, 4))
	}
	cfg := fullConfig(1, 1, [][]Op{prog})
	cfg.Horizon = 1 << 40

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, cfg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}

	// The same run completes under a background context.
	if _, err := RunCtx(context.Background(), cfg); err != nil {
		t.Fatalf("background run: %v", err)
	}
}

func TestValidateWrapsErrInvalidConfig(t *testing.T) {
	cfg := &Config{}
	err := cfg.Validate()
	if !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("Validate() = %v, want wrapped ErrInvalidConfig", err)
	}
	if _, err := Run(Config{}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("Run(invalid) = %v, want wrapped ErrInvalidConfig", err)
	}
}

package sim

import "fmt"

// OpKind enumerates the phases an initiator core's program is made of.
type OpKind int

const (
	// OpCompute keeps the core busy locally for Cycles cycles.
	OpCompute OpKind = iota
	// OpRead performs a blocking read of Burst words from Target.
	OpRead
	// OpWrite performs a blocking write of Burst words to Target.
	OpWrite
	// OpLock spins (read + backoff) on a semaphore Target until the
	// lock is acquired.
	OpLock
	// OpUnlock releases a semaphore Target (a one-word write).
	OpUnlock
	// OpBarrier signals the interrupt device and blocks until all
	// participants have arrived at the same barrier ID.
	OpBarrier
)

func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpLock:
		return "lock"
	case OpUnlock:
		return "unlock"
	case OpBarrier:
		return "barrier"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one step of an initiator program.
type Op struct {
	Kind     OpKind
	Cycles   int64 // OpCompute: duration
	Target   int   // OpRead/OpWrite/OpLock/OpUnlock: target index; OpBarrier: interrupt device index
	Burst    int64 // OpRead/OpWrite: words transferred
	Critical bool  // marks the transfer as a real-time stream member
	Barrier  int   // OpBarrier: barrier identifier
}

// Compute returns a compute op of the given duration.
func Compute(cycles int64) Op { return Op{Kind: OpCompute, Cycles: cycles} }

// Read returns a blocking read op.
func Read(target int, burst int64) Op { return Op{Kind: OpRead, Target: target, Burst: burst} }

// Write returns a blocking write op.
func Write(target int, burst int64) Op { return Op{Kind: OpWrite, Target: target, Burst: burst} }

// CriticalRead returns a read op flagged as real-time traffic.
func CriticalRead(target int, burst int64) Op {
	return Op{Kind: OpRead, Target: target, Burst: burst, Critical: true}
}

// CriticalWrite returns a write op flagged as real-time traffic.
func CriticalWrite(target int, burst int64) Op {
	return Op{Kind: OpWrite, Target: target, Burst: burst, Critical: true}
}

// Lock returns a semaphore-acquire op.
func Lock(semTarget int) Op { return Op{Kind: OpLock, Target: semTarget} }

// Unlock returns a semaphore-release op.
func Unlock(semTarget int) Op { return Op{Kind: OpUnlock, Target: semTarget} }

// Barrier returns a barrier op signalling via the interrupt device.
func Barrier(id, interruptTarget int) Op {
	return Op{Kind: OpBarrier, Barrier: id, Target: interruptTarget}
}

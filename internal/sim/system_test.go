package sim

import (
	"testing"

	"repro/internal/stbus"
)

// fullConfig builds a minimal full-crossbar system config.
func fullConfig(nInit, nTarg int, programs [][]Op) Config {
	return Config{
		NumInitiators: nInit,
		NumTargets:    nTarg,
		Programs:      programs,
		Req:           stbus.Full(nInit, nTarg),
		Resp:          stbus.Full(nTarg, nInit),
		MemWait:       2,
		ReqCycles:     1,
		Horizon:       100000,
		CollectTrace:  true,
	}
}

func TestSingleReadLatency(t *testing.T) {
	// One core, one read of 4 words on an idle full crossbar:
	// request 1 cycle + memory 2 cycles + response 4 cycles = 7.
	cfg := fullConfig(1, 1, [][]Op{{Read(0, 4)}})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Len() != 1 {
		t.Fatalf("samples = %d, want 1", res.Latency.Len())
	}
	if got := res.Latency.Samples()[0].Latency; got != 7 {
		t.Errorf("read latency = %d, want 7", got)
	}
	if res.Completed != 1 {
		t.Errorf("Completed = %d, want 1", res.Completed)
	}
}

func TestSingleWriteLatency(t *testing.T) {
	// Write of 4 words: request 1+4 cycles + memory 2 + ack 1 = 8.
	cfg := fullConfig(1, 1, [][]Op{{Write(0, 4)}})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Latency.Samples()[0].Latency; got != 8 {
		t.Errorf("write latency = %d, want 8", got)
	}
}

func TestComputeDelaysIssue(t *testing.T) {
	cfg := fullConfig(1, 1, [][]Op{{Compute(50), Read(0, 1)}})
	cfg.CollectTrace = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ReqTrace.Events) != 1 {
		t.Fatalf("req events = %d, want 1", len(res.ReqTrace.Events))
	}
	if got := res.ReqTrace.Events[0].Start; got != 50 {
		t.Errorf("request issued at %d, want 50", got)
	}
}

func TestSharedBusSerializesIndependentCores(t *testing.T) {
	// Two cores reading different targets at the same time: on a full
	// crossbar both finish at 7; on a shared bus the response data (and
	// requests) serialize so the second core finishes later.
	progs := [][]Op{{Read(0, 4)}, {Read(1, 4)}}
	full := fullConfig(2, 2, progs)
	resFull, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	shared := full
	shared.Req = stbus.Shared(2, 2)
	shared.Resp = stbus.Shared(2, 2)
	resShared, err := Run(shared)
	if err != nil {
		t.Fatal(err)
	}
	if got := resFull.Latency.Summarize().Max; got != 7 {
		t.Errorf("full crossbar max latency = %d, want 7", got)
	}
	if got := resShared.Latency.Summarize().Max; got <= 7 {
		t.Errorf("shared bus max latency = %d, want > 7", got)
	}
	if resFull.Latency.Summarize().Avg >= resShared.Latency.Summarize().Avg {
		t.Error("shared bus should have higher average latency")
	}
}

func TestTargetContentionSerializesOnFullCrossbar(t *testing.T) {
	// Two cores reading the SAME target contend even on a full crossbar:
	// the request/response serialize at the target's bus.
	progs := [][]Op{{Read(0, 4)}, {Read(0, 4)}}
	res, err := Run(fullConfig(2, 1, progs))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Latency.Summarize()
	if s.Min != 7 {
		t.Errorf("first reader latency = %d, want 7", s.Min)
	}
	if s.Max <= 7 {
		t.Errorf("second reader latency = %d, want > 7 (serialized)", s.Max)
	}
}

func TestTraceEventsMatchTransfers(t *testing.T) {
	cfg := fullConfig(1, 2, [][]Op{{Read(0, 3), Write(1, 2)}})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.ReqTrace.Validate(); err != nil {
		t.Errorf("req trace invalid: %v", err)
	}
	if err := res.RespTrace.Validate(); err != nil {
		t.Errorf("resp trace invalid: %v", err)
	}
	// Request side: read request (1 cycle) to target 0, write (1+2) to
	// target 1.
	if len(res.ReqTrace.Events) != 2 {
		t.Fatalf("req events = %d, want 2", len(res.ReqTrace.Events))
	}
	if res.ReqTrace.Events[0].Len != 1 || res.ReqTrace.Events[0].Receiver != 0 {
		t.Errorf("req event 0 = %+v", res.ReqTrace.Events[0])
	}
	if res.ReqTrace.Events[1].Len != 3 || res.ReqTrace.Events[1].Receiver != 1 {
		t.Errorf("req event 1 = %+v", res.ReqTrace.Events[1])
	}
	// Response side: 3 data beats to initiator 0, then 1 ack beat.
	if len(res.RespTrace.Events) != 2 {
		t.Fatalf("resp events = %d, want 2", len(res.RespTrace.Events))
	}
	if res.RespTrace.Events[0].Len != 3 || res.RespTrace.Events[0].Sender != 0 {
		t.Errorf("resp event 0 = %+v", res.RespTrace.Events[0])
	}
	if res.RespTrace.Events[1].Len != 1 || res.RespTrace.Events[1].Sender != 1 {
		t.Errorf("resp event 1 = %+v", res.RespTrace.Events[1])
	}
}

func TestSemaphoreMutualExclusion(t *testing.T) {
	// Two cores lock, compute, unlock. The semaphore must serialize the
	// critical sections: measure with writes to a shared target inside
	// the critical section; their request transfers must not overlap.
	progs := [][]Op{
		{Lock(1), Write(0, 10), Unlock(1)},
		{Lock(1), Write(0, 10), Unlock(1)},
	}
	cfg := fullConfig(2, 2, progs)
	cfg.SemTargets = []int{1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("Completed = %d, want 2", res.Completed)
	}
	// Both critical-section writes target 0; with the lock held they
	// cannot overlap. (They serialize on target 0's bus anyway, but the
	// lock also forces the full transactions apart; just sanity-check
	// both writes happened.)
	var writes int
	for _, e := range res.ReqTrace.Events {
		if e.Receiver == 0 && e.Len == 11 {
			writes++
		}
	}
	if writes != 2 {
		t.Errorf("critical-section writes = %d, want 2", writes)
	}
}

func TestSemaphoreContentionRetries(t *testing.T) {
	// With a long critical section, the second core must retry: the
	// semaphore target sees more than 2 lock reads.
	progs := [][]Op{
		{Lock(1), Compute(500), Unlock(1)},
		{Lock(1), Compute(500), Unlock(1)},
	}
	cfg := fullConfig(2, 2, progs)
	cfg.SemTargets = []int{1}
	cfg.LockRetry = 32
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("Completed = %d, want 2", res.Completed)
	}
	var semReads int
	for _, e := range res.ReqTrace.Events {
		if e.Receiver == 1 && e.Len == 1 { // lock attempts are 1-cycle reads
			semReads++
		}
	}
	if semReads <= 2 {
		t.Errorf("semaphore lock reads = %d, want > 2 (retries)", semReads)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// Core 0 computes 1000 cycles then hits the barrier; core 1 reaches
	// it immediately. Core 1's post-barrier read must start after cycle
	// 1000.
	progs := [][]Op{
		{Compute(1000), Barrier(1, 1)},
		{Barrier(1, 1), Read(0, 1)},
	}
	cfg := fullConfig(2, 2, progs)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("Completed = %d, want 2", res.Completed)
	}
	var readStart int64 = -1
	for _, e := range res.ReqTrace.Events {
		if e.Receiver == 0 && e.Len == 1 && e.Sender == 1 {
			readStart = e.Start
		}
	}
	if readStart < 1000 {
		t.Errorf("post-barrier read started at %d, want >= 1000", readStart)
	}
}

func TestCriticalFlagPropagates(t *testing.T) {
	cfg := fullConfig(1, 1, [][]Op{{CriticalRead(0, 2)}})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReqTrace.Events[0].Critical {
		t.Error("request event not marked critical")
	}
	if !res.RespTrace.Events[0].Critical {
		t.Error("response event not marked critical")
	}
	if !res.Latency.Samples()[0].Critical {
		t.Error("latency sample not marked critical")
	}
}

func TestHorizonClampsTrace(t *testing.T) {
	cfg := fullConfig(1, 1, [][]Op{{Compute(90), Read(0, 50)}})
	cfg.Horizon = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.ReqTrace.Validate(); err != nil {
		t.Errorf("clamped trace invalid: %v", err)
	}
	if err := res.RespTrace.Validate(); err != nil {
		t.Errorf("clamped resp trace invalid: %v", err)
	}
}

func TestValidateConfigErrors(t *testing.T) {
	good := fullConfig(1, 1, [][]Op{{Read(0, 1)}})
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no programs", func(c *Config) { c.Programs = nil }},
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"nil req", func(c *Config) { c.Req = nil }},
		{"req shape", func(c *Config) { c.Req = stbus.Full(5, 5) }},
		{"resp shape", func(c *Config) { c.Resp = stbus.Full(5, 5) }},
		{"bad burst", func(c *Config) { c.Programs = [][]Op{{Read(0, 0)}} }},
		{"bad target", func(c *Config) { c.Programs = [][]Op{{Read(7, 1)}} }},
		{"negative compute", func(c *Config) { c.Programs = [][]Op{{Compute(-1)}} }},
		{"zero reqcycles", func(c *Config) { c.ReqCycles = 0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := good
			c.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	progs := [][]Op{
		{Lock(2), Write(0, 5), Unlock(2), Read(1, 8), Compute(10), Read(0, 4)},
		{Read(1, 8), Lock(2), Write(0, 5), Unlock(2), Read(0, 4)},
		{Compute(3), Read(0, 8), Read(1, 8)},
	}
	mk := func() Config {
		cfg := fullConfig(3, 3, progs)
		cfg.SemTargets = []int{2}
		return cfg
	}
	a, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency.Len() != b.Latency.Len() {
		t.Fatalf("sample counts differ: %d vs %d", a.Latency.Len(), b.Latency.Len())
	}
	for i := range a.Latency.Samples() {
		if a.Latency.Samples()[i] != b.Latency.Samples()[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	if len(a.ReqTrace.Events) != len(b.ReqTrace.Events) {
		t.Fatal("trace lengths differ")
	}
	for i := range a.ReqTrace.Events {
		if a.ReqTrace.Events[i] != b.ReqTrace.Events[i] {
			t.Fatalf("trace event %d differs", i)
		}
	}
}

func TestOpKindStrings(t *testing.T) {
	kinds := map[OpKind]string{
		OpCompute: "compute", OpRead: "read", OpWrite: "write",
		OpLock: "lock", OpUnlock: "unlock", OpBarrier: "barrier",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

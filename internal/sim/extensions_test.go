package sim

import (
	"testing"

	"repro/internal/stbus"
)

func TestPostedWritesOverlapWithCompute(t *testing.T) {
	// Blocking: write (burst 10) then compute 100 => write latency ~14
	// serialized before the compute. Posted: the compute overlaps the
	// write, so the second write starts earlier.
	progs := [][]Op{{Write(0, 10), Compute(100), Write(0, 10)}}
	blocking := fullConfig(1, 1, progs)
	resB, err := Run(blocking)
	if err != nil {
		t.Fatal(err)
	}
	posted := blocking
	posted.PostedWrites = true
	resP, err := Run(posted)
	if err != nil {
		t.Fatal(err)
	}
	lastStart := func(r *Result) int64 {
		var last int64
		for _, e := range r.ReqTrace.Events {
			if e.Start > last {
				last = e.Start
			}
		}
		return last
	}
	if lastStart(resP) >= lastStart(resB) {
		t.Errorf("posted second write at %d, blocking at %d; posted should be earlier",
			lastStart(resP), lastStart(resB))
	}
	if resP.Latency.Len() != resB.Latency.Len() {
		t.Errorf("sample counts differ: %d vs %d", resP.Latency.Len(), resB.Latency.Len())
	}
}

func TestPostedWritesCreditLimit(t *testing.T) {
	// With 1 credit, back-to-back writes serialize like blocking on the
	// ack path; with 4 credits they pipeline on the request bus.
	var progs [][]Op
	var ops []Op
	for i := 0; i < 6; i++ {
		ops = append(ops, Write(0, 10))
	}
	progs = append(progs, ops)

	one := fullConfig(1, 1, progs)
	one.PostedWrites = true
	one.MaxOutstandingWrites = 1
	resOne, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	four := one
	four.MaxOutstandingWrites = 4
	resFour, err := Run(four)
	if err != nil {
		t.Fatal(err)
	}
	end := func(r *Result) int64 {
		var last int64
		for _, e := range r.ReqTrace.Events {
			if e.End() > last {
				last = e.End()
			}
		}
		return last
	}
	if end(resFour) >= end(resOne) {
		t.Errorf("4 credits finished at %d, 1 credit at %d; more credits must pipeline better",
			end(resFour), end(resOne))
	}
	if resOne.Completed != 1 || resFour.Completed != 1 {
		t.Error("cores did not complete")
	}
}

func TestPostedWritesDeterministic(t *testing.T) {
	progs := [][]Op{
		{Write(0, 5), Compute(3), Write(1, 5), Write(0, 2)},
		{Write(1, 5), Write(0, 5), Compute(2), Write(1, 2)},
	}
	mk := func() Config {
		cfg := fullConfig(2, 2, progs)
		cfg.PostedWrites = true
		cfg.MaxOutstandingWrites = 2
		return cfg
	}
	a, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency.Len() != b.Latency.Len() {
		t.Fatal("nondeterministic sample count")
	}
	for i := range a.Latency.Samples() {
		if a.Latency.Samples()[i] != b.Latency.Samples()[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestMemWaitOfHeterogeneous(t *testing.T) {
	// Target 0 fast (0 wait), target 1 slow (20 waits).
	cfg := fullConfig(1, 2, [][]Op{{Read(0, 1), Read(1, 1)}})
	cfg.MemWaitOf = []int64{0, 20}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := res.Latency.Samples()
	if len(samples) != 2 {
		t.Fatalf("samples = %d", len(samples))
	}
	// Read of 1 word: req 1 + wait + resp 1.
	if samples[0].Latency != 2 {
		t.Errorf("fast target latency = %d, want 2", samples[0].Latency)
	}
	if samples[1].Latency != 22 {
		t.Errorf("slow target latency = %d, want 22", samples[1].Latency)
	}
}

func TestMemWaitOfValidation(t *testing.T) {
	cfg := fullConfig(1, 1, [][]Op{{Read(0, 1)}})
	cfg.MemWaitOf = []int64{1, 2} // wrong length
	if _, err := Run(cfg); err == nil {
		t.Error("wrong MemWaitOf length accepted")
	}
	cfg.MemWaitOf = []int64{-1}
	if _, err := Run(cfg); err == nil {
		t.Error("negative MemWaitOf accepted")
	}
	cfg.MemWaitOf = nil
	cfg.MaxOutstandingWrites = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative MaxOutstandingWrites accepted")
	}
}

func TestAdapterDelayStretchesOccupancy(t *testing.T) {
	// Two reads to targets on one bus: with adapter delay 5 the second
	// read's request waits 5 extra cycles.
	progs := [][]Op{{Read(0, 1)}, {Read(1, 1)}}
	cfg := fullConfig(2, 2, progs)
	cfg.Req = stbus.Shared(2, 2)
	cfg.Resp = stbus.Full(2, 2)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	delayed := cfg
	reqCfg := *stbus.Shared(2, 2)
	reqCfg.AdapterDelay = 5
	delayed.Req = &reqCfg
	resD, err := Run(delayed)
	if err != nil {
		t.Fatal(err)
	}
	if resD.Latency.Summarize().Max <= base.Latency.Summarize().Max {
		t.Errorf("adapter delay did not raise max latency: %d vs %d",
			resD.Latency.Summarize().Max, base.Latency.Summarize().Max)
	}
	// Trace lengths record data beats only, not the adapter stretch.
	for _, e := range resD.ReqTrace.Events {
		if e.Len != 1 {
			t.Errorf("trace event len = %d, want 1 (data beats only)", e.Len)
		}
	}
}

func TestThroughputAccounting(t *testing.T) {
	// One read of 8 words: request 1 beat + response 8 beats = 9 beats.
	cfg := fullConfig(1, 1, [][]Op{{Read(0, 8)}})
	cfg.Horizon = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReqBeats != 1 || res.RespBeats != 8 {
		t.Errorf("beats = %d/%d, want 1/8", res.ReqBeats, res.RespBeats)
	}
	if got := res.Throughput(); got != 9.0/100 {
		t.Errorf("Throughput = %f, want %f", got, 9.0/100)
	}
}

func TestThroughputExcludesAdapterStretch(t *testing.T) {
	cfg := fullConfig(1, 1, [][]Op{{Read(0, 4)}})
	reqCfg := *cfg.Req
	reqCfg.AdapterDelay = 7
	cfg.Req = &reqCfg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReqBeats != 1 {
		t.Errorf("ReqBeats = %d, want 1 (adapter stretch excluded)", res.ReqBeats)
	}
}

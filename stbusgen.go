// Package stbusgen is an application-specific STbus crossbar generator:
// a reproduction of "An Application-Specific Design Methodology for
// STbus Crossbar Generation" (Murali & De Micheli, DATE 2005).
//
// The package is the public face of the repository. It wires the
// four-phase methodology end to end:
//
//  1. simulate the application on a full crossbar and collect its
//     functional traffic trace (internal/sim, internal/stbus);
//  2. analyze the trace in fixed-size windows — per-target load,
//     pairwise stream overlap, critical streams (internal/trace);
//  3. design the minimal crossbar configuration and the optimal
//     binding of cores onto buses (internal/core);
//  4. validate the designed crossbar by cycle-accurate simulation.
//
// # Quick start
//
//	app := stbusgen.Mat2(1)
//	result, err := stbusgen.DesignForApp(app, stbusgen.DefaultOptions())
//	if err != nil { ... }
//	fmt.Println(result.Pair.TotalBuses(), result.Validation.Latency.SummarizePacket())
//
// See examples/ for runnable programs and internal/experiments for the
// harness that regenerates every table and figure of the paper.
package stbusgen

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Aliases re-exporting the library's main types, so that facade users
// work with one import.
type (
	// App is a benchmark application plus its platform layout.
	App = workloads.App
	// Options are the design-methodology parameters (window-derived
	// conflict threshold, targets-per-bus cap, binding objective, ...).
	Options = core.Options
	// Design is a designed crossbar for one direction: bus count plus
	// the receiver→bus binding.
	Design = core.Design
	// DesignPair is the two designed crossbars (initiator→target and
	// target→initiator).
	DesignPair = experiments.DesignPair
	// Trace is a functional traffic trace of one direction.
	Trace = trace.Trace
	// Analysis is the window-based traffic analysis of a trace.
	Analysis = trace.Analysis
	// SimResult is a cycle-accurate simulation outcome (latency
	// statistics, traces, utilization).
	SimResult = sim.Result
	// Cache is the design-reuse interface consulted through
	// Options.Cache: exact content hits skip the solver entirely, near
	// hits warm-start it. Results are bit-identical to cold solves.
	Cache = core.Cache
	// CacheConfig tunes NewCache (capacity, on-disk tier, warm-start
	// delta tolerance).
	CacheConfig = cache.Config
	// DesignCache is the content-addressed LRU (+ optional disk)
	// implementation of Cache from internal/cache.
	DesignCache = cache.Store
)

// NewCache builds the standard design cache; assign it to
// Options.Cache to make every design run through it reuse-aware:
//
//	opts := stbusgen.DefaultOptions()
//	opts.Cache = stbusgen.NewCache(stbusgen.CacheConfig{Dir: ".stbus-cache"})
func NewCache(cfg CacheConfig) *DesignCache { return cache.New(cfg) }

// DefaultOptions returns the paper's main parameter set: 30% overlap
// threshold, critical-stream separation, at most 4 targets per bus,
// optimal (min-max-overlap) binding.
func DefaultOptions() Options { return core.DefaultOptions() }

// Workload constructors for the paper's benchmark suite.
var (
	// Mat1 is the 25-core matrix multiplication suite.
	Mat1 = workloads.Mat1
	// Mat2 is the 21-core matrix multiplication suite (the paper's
	// running example).
	Mat2 = workloads.Mat2
	// FFT is the 29-core FFT suite.
	FFT = workloads.FFT
	// QSort is the 15-core quick sort suite.
	QSort = workloads.QSort
	// DES is the 19-core DES encryption system.
	DES = workloads.DES
	// Synthetic is the 20-core synthetic streaming benchmark with a
	// parameterizable burst length.
	Synthetic = workloads.Synthetic
	// Benchmarks returns all five paper benchmarks.
	Benchmarks = workloads.All
)

// Result bundles the artifacts of a full design run.
type Result struct {
	// App is the application that was designed for.
	App *App
	// FullRun is the phase-1 full-crossbar simulation.
	FullRun *SimResult
	// ReqAnalysis / RespAnalysis are the windowed traffic analyses.
	ReqAnalysis, RespAnalysis *Analysis
	// Pair holds the designed crossbars of both directions.
	Pair *DesignPair
	// Validation is the phase-4 simulation on the designed crossbars.
	Validation *SimResult
}

// DesignForApp runs the complete methodology on an application: full
// crossbar simulation, window analysis with the app's recommended
// window size, crossbar design for both directions, and validation.
// It is DesignForAppCtx with a background context; use the Designer
// engine (designer.go) for cancellation and deadlines.
func DesignForApp(app *App, opts Options) (*Result, error) {
	return DesignForAppCtx(context.Background(), app, opts)
}

// CollectTrace runs the application on a full crossbar and returns the
// functional traces of both directions (phase 1 only).
func CollectTrace(app *App) (req, resp *Trace, err error) {
	return CollectTraceCtx(context.Background(), app)
}

// DesignFromTrace designs one direction's crossbar from an existing
// trace with the given window size (phases 2–3 only); this is what
// cmd/xbargen uses on trace files.
func DesignFromTrace(tr *Trace, windowSize int64, opts Options) (*Design, error) {
	return DesignFromTraceCtx(context.Background(), tr, windowSize, opts)
}

// checkPair validates that a design pair's bindings match the app's
// platform shape.
func checkPair(app *App, pair *DesignPair) error {
	if pair == nil || pair.Req == nil || pair.Resp == nil {
		return fmt.Errorf("stbusgen: design pair is incomplete")
	}
	if len(pair.Req.BusOf) != app.NumTargets {
		return fmt.Errorf("stbusgen: request binding covers %d targets, app has %d", len(pair.Req.BusOf), app.NumTargets)
	}
	if len(pair.Resp.BusOf) != app.NumInitiators {
		return fmt.Errorf("stbusgen: response binding covers %d initiators, app has %d", len(pair.Resp.BusOf), app.NumInitiators)
	}
	for _, d := range []struct {
		name   string
		design *Design
	}{{"request", pair.Req}, {"response", pair.Resp}} {
		if d.design.NumBuses <= 0 {
			return fmt.Errorf("stbusgen: %s design has %d buses", d.name, d.design.NumBuses)
		}
		for r, b := range d.design.BusOf {
			if b < 0 || b >= d.design.NumBuses {
				return fmt.Errorf("stbusgen: %s binding maps receiver %d to bus %d of %d",
					d.name, r, b, d.design.NumBuses)
			}
		}
	}
	return nil
}

// ValidateDesign simulates the application on an explicit pair of
// designed crossbars and returns the cycle-accurate results.
func ValidateDesign(app *App, pair *DesignPair) (*SimResult, error) {
	return ValidateDesignCtx(context.Background(), app, pair)
}

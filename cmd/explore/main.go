// Command explore sweeps the methodology's tuning parameters (window
// size, overlap threshold, targets-per-bus cap) on one benchmark,
// validates every candidate crossbar by simulation, and reports the
// size/latency trade-off with the Pareto-optimal rows marked — the
// design-space exploration the paper describes in Section 7.1.
//
// Usage:
//
//	explore -app mat2
//	explore -app synth -burst 2000
package main

import (
	"context"
	"flag"
	"fmt"
	"strings"

	"repro/internal/cli"
	"repro/internal/explore"
	"repro/internal/workloads"
)

var (
	appName = flag.String("app", "mat2", "application: mat1, mat2, fft, qsort, des, synth")
	seed    = flag.Int64("seed", 1, "workload seed")
	burst   = flag.Int64("burst", 1000, "nominal burst length for -app synth")
)

func main() { cli.Main("explore", run) }

func run(ctx context.Context) (err error) {

	var app *workloads.App
	switch strings.ToLower(*appName) {
	case "mat1":
		app = workloads.Mat1(*seed)
	case "mat2":
		app = workloads.Mat2(*seed)
	case "fft":
		app = workloads.FFT(*seed)
	case "qsort":
		app = workloads.QSort(*seed)
	case "des":
		app = workloads.DES(*seed)
	case "synth":
		app = workloads.Synthetic(*seed, *burst)
	default:
		return fmt.Errorf("unknown -app %q", *appName)
	}

	points, err := explore.SweepCtx(ctx, app, explore.DefaultGrid(app.WindowSize))
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Design space of %s (%d cores; * = Pareto-optimal in buses × avg latency)",
		app.Name, app.NumCores())
	fmt.Println(explore.Report(title, points))

	front := explore.ParetoFront(points)
	fmt.Println("Pareto frontier:")
	for _, p := range front {
		fmt.Printf("  %2d buses, avg %.2f cy  (window %d, threshold %.0f%%, maxtb %d)\n",
			p.Buses, p.AvgLat, p.Window, p.Threshold*100, p.MaxPerBus)
	}
	return nil
}

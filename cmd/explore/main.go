// Command explore sweeps the methodology's tuning parameters (window
// size, overlap threshold, targets-per-bus cap) on one benchmark,
// validates every candidate crossbar by simulation, and reports the
// size/latency trade-off with the Pareto-optimal rows marked — the
// design-space exploration the paper describes in Section 7.1.
//
// Usage:
//
//	explore -app mat2
//	explore -app synth -burst 2000
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/cli"
	"repro/internal/explore"
	"repro/internal/workloads"
)

var (
	appName = flag.String("app", "mat2", "application: mat1, mat2, fft, qsort, des, synth")
	seed    = flag.Int64("seed", 1, "workload seed")
	burst   = flag.Int64("burst", 1000, "nominal burst length for -app synth")
	timeout = flag.Duration("timeout", 0, "abort after this duration (0 = no limit); Ctrl-C also cancels")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("explore: ")
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() (err error) {
	ctx, stop := cli.Context(*timeout)
	defer stop()

	stopProf, err := cli.StartProfiling()
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, stopProf()) }()

	ctx, stopObs, err := cli.StartObs(ctx)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, stopObs()) }()

	var app *workloads.App
	switch strings.ToLower(*appName) {
	case "mat1":
		app = workloads.Mat1(*seed)
	case "mat2":
		app = workloads.Mat2(*seed)
	case "fft":
		app = workloads.FFT(*seed)
	case "qsort":
		app = workloads.QSort(*seed)
	case "des":
		app = workloads.DES(*seed)
	case "synth":
		app = workloads.Synthetic(*seed, *burst)
	default:
		return fmt.Errorf("unknown -app %q", *appName)
	}

	points, err := explore.SweepCtx(ctx, app, explore.DefaultGrid(app.WindowSize))
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Design space of %s (%d cores; * = Pareto-optimal in buses × avg latency)",
		app.Name, app.NumCores())
	fmt.Println(explore.Report(title, points))

	front := explore.ParetoFront(points)
	fmt.Println("Pareto frontier:")
	for _, p := range front {
		fmt.Printf("  %2d buses, avg %.2f cy  (window %d, threshold %.0f%%, maxtb %d)\n",
			p.Buses, p.AvgLat, p.Window, p.Threshold*100, p.MaxPerBus)
	}
	return nil
}

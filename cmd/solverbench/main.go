// Command solverbench times the MILP solver hot path on the
// deterministic benchprobs instances and writes the results as JSON —
// by convention to BENCH_solver.json at the repository root, which CI
// uploads as a build artifact. The cases mirror the in-tree
// `go test -bench MILP` benchmarks in internal/core, so numbers from
// either source are comparable.
//
// "Legacy" entries run the pre-incremental solver configuration (cold
// two-phase LP solve per node, weak symmetry rows only); "warm" entries
// run the shipped incremental configuration. The 32-receiver
// feasibility instance has no runnable legacy entry: that path does not
// finish even its root LP relaxation in tens of minutes, which is
// recorded as a skipped case rather than silently dropped.
//
// Usage:
//
//	solverbench                  # full suite, writes BENCH_solver.json
//	solverbench -quick -out /tmp/b.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"testing"
	"time"

	"repro/internal/benchprobs"
	"repro/internal/cache"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/milp"
	"repro/internal/trace"
)

type caseResult struct {
	Name        string `json:"name"`
	Config      string `json:"config"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	Nodes       int64  `json:"milp_nodes"`
	MaxDepth    int64  `json:"max_depth"`
	Incumbents  int64  `json:"incumbents"`
	WarmSolves  int64  `json:"warm_solves"`
	ColdSolves  int64  `json:"cold_solves"`
	DualPivots  int64  `json:"dual_pivots"`
	LPIters     int64  `json:"lp_iterations"`
	Skipped     bool   `json:"skipped,omitempty"`
	Note        string `json:"note,omitempty"`
	// Speedup is set on warm-delta and portfolio entries: the sequential
	// baseline sibling's ns/op divided by this entry's ns/op.
	Speedup float64 `json:"speedup,omitempty"`
	// Buses/Objective/Capped pin the design outcome of full-design
	// cases: the audited-optimality claims of the large instances are
	// exactly "Buses equals the clique bound, Objective is 0, Capped is
	// false", so regressions show up in the pinned JSON, not just in
	// timing noise.
	Buses     int   `json:"buses,omitempty"`
	Objective int64 `json:"objective,omitempty"`
	Capped    bool  `json:"capped,omitempty"`
}

type report struct {
	GeneratedBy string       `json:"generated_by"`
	Timestamp   string       `json:"timestamp"`
	Cases       []caseResult `json:"cases"`
}

// benchCase runs one solver configuration under testing.Benchmark and
// folds the per-iteration solver statistics into the result.
func benchCase(ctx context.Context, name string, a *trace.Analysis, numBuses int, sym core.SymmetryLevel, optimize bool, opts milp.Options, config string) caseResult {
	conflicts := core.BuildConflicts(a, core.DefaultOptions())
	fr := core.NewFormulator(a, conflicts, 4, sym)
	f := fr.ForBusCount(numBuses, optimize)
	opts.FirstFeasible = !optimize

	var nodes, depth, incumbents, warm, cold, pivots, lpIters, iters int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := milp.SolveCtx(ctx, f.Problem, opts)
			if err != nil {
				b.Fatal(err)
			}
			nodes += int64(sol.Nodes)
			if d := int64(sol.MaxDepth); d > depth {
				depth = d
			}
			incumbents += sol.Incumbents
			warm += sol.WarmSolves
			cold += sol.ColdSolves
			pivots += sol.DualPivots
			lpIters += sol.LPIterations
			iters++
		}
	})
	if iters == 0 {
		return caseResult{Name: name, Config: config, Skipped: true, Note: "benchmark did not run"}
	}
	return caseResult{
		Name:        name,
		Config:      config,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Nodes:       nodes / iters,
		MaxDepth:    depth,
		Incumbents:  incumbents / iters,
		WarmSolves:  warm / iters,
		ColdSolves:  cold / iters,
		DualPivots:  pivots / iters,
		LPIters:     lpIters / iters,
	}
}

// deltaOptions is the fixed configuration of the warm re-solve (delta)
// benchmarks on benchprobs.DeltaTrace32: the MILP engine's serial
// binary search, feasibility only, 8 receivers per bus (see the
// DeltaTrace32 doc comment for why the instance makes the cold/warm
// gap visible).
func deltaOptions() core.Options {
	opts := core.DefaultOptions()
	opts.MaxPerBus = 8
	opts.OptimizeBinding = false
	opts.Engine = core.EngineMILP
	opts.Workers = 1
	return opts
}

// benchDesign times a full core.DesignCrossbarCtx run. When prime is
// non-nil it builds a fresh cache for every iteration outside the
// timed section, so warm-delta entries measure exactly one cold-primed
// warm re-solve per op, never an exact hit on the design stored by the
// previous iteration.
func benchDesign(ctx context.Context, name, config string, a *trace.Analysis, opts core.Options, prime func() core.Cache) caseResult {
	var nodes, iters int64
	var last *core.Design
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if prime != nil {
				b.StopTimer()
				opts.Cache = prime()
				b.StartTimer()
			}
			d, err := core.DesignCrossbarCtx(ctx, a, opts)
			if err != nil {
				b.Fatal(err)
			}
			nodes += d.SearchNodes
			last = d
			iters++
		}
	})
	if iters == 0 {
		return caseResult{Name: name, Config: config, Skipped: true, Note: "benchmark did not run"}
	}
	return caseResult{
		Name:        name,
		Config:      config,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Nodes:       nodes / iters,
		Buses:       last.NumBuses,
		Objective:   last.MaxBusOverlap,
		Capped:      last.Capped,
	}
}

// deltaCases appends the warm-vs-cold re-solve comparison: the cache
// holds the unperturbed DeltaTrace32 design, and each case re-designs
// a variant with ~1%, ~5% or ~20% of the trace events perturbed. The
// small deltas must warm-start (single re-solve at the cached count);
// the 20% delta exceeds the warm lookup budget and must fall back to a
// full cold search, pinning the fallback path's cost too.
func deltaCases(ctx context.Context, add func(caseResult)) error {
	tr := benchprobs.DeltaTrace32()
	baseA, err := trace.Analyze(tr, benchprobs.AnalysisWindow)
	if err != nil {
		return err
	}
	opts := deltaOptions()
	baseD, err := core.DesignCrossbarCtx(ctx, baseA, opts)
	if err != nil {
		return err
	}
	prime := func() core.Cache {
		s := cache.New(cache.Config{})
		s.Store(ctx, baseA, opts, baseD)
		return s
	}

	// Exact content hit: the same analysis again. The design must come
	// straight off the in-memory store — microseconds, no solver work.
	// One shared primed cache is sound here: a Lookup hit returns before
	// the solve, so no iteration ever re-stores into it.
	hitOpts := opts
	hitOpts.Cache = prime()
	add(benchDesign(ctx, "delta-32rx-exact-hit", "warm", baseA, hitOpts, nil))

	for _, d := range []struct {
		frac float64
		name string
	}{
		{0.01, "delta-32rx-1pct"},
		{0.05, "delta-32rx-5pct"},
		{0.20, "delta-32rx-20pct"},
	} {
		pa, err := trace.Analyze(benchprobs.PerturbTrace(tr, d.frac, 7), benchprobs.AnalysisWindow)
		if err != nil {
			return err
		}
		if pa.Fingerprint() == baseA.Fingerprint() {
			add(caseResult{Name: d.name, Config: "warm-delta", Skipped: true,
				Note: "perturbation left the analysis unchanged"})
			continue
		}
		cold := benchDesign(ctx, d.name, "cold", pa, opts, nil)
		add(cold)
		warm := benchDesign(ctx, d.name, "warm-delta", pa, opts, prime)
		if warm.NsPerOp > 0 {
			warm.Speedup = float64(cold.NsPerOp) / float64(warm.NsPerOp)
		}
		add(warm)
	}
	return nil
}

// parallelCases appends the parallel branch-and-bound and portfolio
// racing comparison. Three stories, each pinned:
//
//   - probe-32rx-12bus: the same feasibility probe the warm MILP case
//     above measures, solved by the racing portfolio — the parallel
//     assignment dive settles it in microseconds, so the pinned Speedup
//     against the sequential MILP baseline is the headline number.
//   - probe-32rx-10bus and design-32rx-feasible: the decisive probe and
//     the full design of the 32-receiver instance, which no sequential
//     engine completes at all (recorded as skipped baselines, the same
//     convention as the legacy 32-receiver entry).
//   - design-{128,256,512}rx: the production-scale instances, designed
//     to audited optimality (Buses equals the exact clique bound,
//     Objective 0, Capped false) across engines and worker counts.
//
// Wall-clock worker scaling depends on the host's core count — the
// results (and the pinned design outcomes) do not: the parallel solver
// is bit-identical to the sequential one at every worker count.
func parallelCases(ctx context.Context, quick bool, add func(caseResult)) {
	a32 := benchprobs.Analysis32()

	probe := func(engine core.Engine, workers, k int) core.Options {
		opts := core.DefaultOptions()
		opts.Engine = engine
		opts.Workers = workers
		opts.MinBuses = k
		opts.MaxBuses = k
		opts.OptimizeBinding = false
		return opts
	}

	if quick {
		add(caseResult{Name: "probe-32rx-12bus", Config: "milp-seq", Skipped: true, Note: "-quick"})
		add(caseResult{Name: "probe-32rx-12bus", Config: "portfolio-w8", Skipped: true, Note: "-quick"})
	} else {
		seq := benchDesign(ctx, "probe-32rx-12bus", "milp-seq", a32, probe(core.EngineMILP, 1, 12), nil)
		add(seq)
		race := benchDesign(ctx, "probe-32rx-12bus", "portfolio-w8", a32, probe(core.EnginePortfolio, 8, 12), nil)
		if race.NsPerOp > 0 && !seq.Skipped {
			race.Speedup = float64(seq.NsPerOp) / float64(race.NsPerOp)
		}
		add(race)
	}

	add(caseResult{Name: "probe-32rx-10bus", Config: "milp-seq", Skipped: true,
		Note: "the sequential MILP does not finish the decisive probe (observed >240s without completing; the LP node rate collapses near the feasibility boundary); the entries below are the replacement"})
	add(benchDesign(ctx, "probe-32rx-10bus", "branchbound-w1", a32, probe(core.EngineBranchBound, 1, 10), nil))
	for _, w := range []int{2, 4, 8} {
		add(benchDesign(ctx, "probe-32rx-10bus", fmt.Sprintf("portfolio-w%d", w), a32, probe(core.EnginePortfolio, w, 10), nil))
	}

	add(caseResult{Name: "design-32rx-feasible", Config: "branchbound-seq", Skipped: true,
		Note: "fails with ErrSearchLimit: the k=9 probe exhausts the node budget undecided and the sequential engine has no fallback (observed ~7.6s to failure); the portfolio entry returns the 10-bus design flagged Capped instead"})
	if quick {
		add(caseResult{Name: "design-32rx-feasible", Config: "portfolio-w8", Skipped: true, Note: "-quick"})
	} else {
		opts := core.DefaultOptions()
		opts.OptimizeBinding = false
		opts.Engine = core.EnginePortfolio
		opts.Workers = 8
		add(benchDesign(ctx, "design-32rx-feasible", "portfolio-w8", a32, opts, nil))
	}

	for _, tc := range []struct {
		name string
		a    *trace.Analysis
	}{
		{"design-128rx", benchprobs.Analysis128()},
		{"design-256rx", benchprobs.Analysis256()},
		{"design-512rx", benchprobs.Analysis512()},
	} {
		for _, cfg := range []struct {
			engine  core.Engine
			workers int
			label   string
		}{
			{core.EngineBranchBound, 1, "branchbound-w1"},
			{core.EngineBranchBound, 2, "branchbound-w2"},
			{core.EngineBranchBound, 4, "branchbound-w4"},
			{core.EngineBranchBound, 8, "branchbound-w8"},
			{core.EnginePortfolio, 8, "portfolio-w8"},
		} {
			opts := core.DefaultOptions()
			opts.Engine = cfg.engine
			opts.Workers = cfg.workers
			add(benchDesign(ctx, tc.name, cfg.label, tc.a, opts, nil))
		}
	}
}

// bindingIncumbent solves the binding MILP of a once, cold, and
// re-encodes the optimal binding as an incumbent vector for the same
// formulation.
func bindingIncumbent(ctx context.Context, a *trace.Analysis, numBuses int) ([]float64, error) {
	conflicts := core.BuildConflicts(a, core.DefaultOptions())
	f := core.NewFormulator(a, conflicts, 4, core.SymFull).ForBusCount(numBuses, true)
	sol, err := milp.SolveCtx(ctx, f.Problem, milp.Options{})
	if err != nil {
		return nil, err
	}
	busOf, err := f.Extract(sol.X)
	if err != nil {
		return nil, err
	}
	return f.Inject(busOf)
}

var (
	out   = flag.String("out", "BENCH_solver.json", "output JSON path")
	quick = flag.Bool("quick", false, "skip the multi-second 32-receiver feasible case")
)

func main() { cli.Main("solverbench", run) }

func run(ctx context.Context) (err error) {

	a12 := benchprobs.Analysis12()
	a32 := benchprobs.Analysis32()
	a8 := benchprobs.Analysis8()

	legacy := milp.Options{Cold: true}
	warm := milp.Options{}

	var rep report
	rep.GeneratedBy = "cmd/solverbench"
	rep.Timestamp = time.Now().UTC().Format(time.RFC3339)

	add := func(c caseResult) {
		rep.Cases = append(rep.Cases, c)
		if c.Skipped {
			log.Printf("%-28s %-14s skipped: %s", c.Name, c.Config, c.Note)
			return
		}
		log.Printf("%-28s %-14s %12d ns/op %8d nodes %3d deep %4d inc %6d warm %6d cold %8d lp-iters",
			c.Name, c.Config, c.NsPerOp, c.Nodes, c.MaxDepth, c.Incumbents, c.WarmSolves, c.ColdSolves, c.LPIters)
	}

	add(benchCase(ctx, "feasible-12rx-4bus", a12, 4, core.SymWeak, false, legacy, "legacy"))
	add(benchCase(ctx, "feasible-12rx-4bus", a12, 4, core.SymFull, false, warm, "warm"))
	add(caseResult{
		Name: "feasible-32rx-12bus", Config: "legacy", Skipped: true,
		Note: "the cold per-node solver does not finish the root LP relaxation of this instance (observed >50 min without completing); the warm entry below is the replacement this tool exists to measure",
	})
	if *quick {
		add(caseResult{Name: "feasible-32rx-12bus", Config: "warm", Skipped: true, Note: "-quick"})
	} else {
		add(benchCase(ctx, "feasible-32rx-12bus", a32, 12, core.SymFull, false, warm, "warm"))
	}
	add(benchCase(ctx, "infeasible-32rx-8bus-root", a32, 8, core.SymFull, false, warm, "warm"))
	add(benchCase(ctx, "binding-8rx-3bus", a8, 3, core.SymWeak, true, legacy, "legacy"))
	add(benchCase(ctx, "binding-8rx-3bus", a8, 3, core.SymFull, true, warm, "warm"))

	// Incumbent-seeded binding: re-solve the 8-receiver binding MILP
	// with its own optimum injected as the starting incumbent
	// (Formulation.Inject canonicalizes the binding into the variable
	// space) — the upper bound the cross-request cache would provide on
	// a re-solve. The answer is unchanged; only the pruning differs.
	if inc, err := bindingIncumbent(ctx, a8, 3); err != nil {
		add(caseResult{Name: "binding-8rx-3bus", Config: "warm-incumbent", Skipped: true, Note: err.Error()})
	} else {
		add(benchCase(ctx, "binding-8rx-3bus", a8, 3, core.SymFull, true, milp.Options{Incumbent: inc}, "warm-incumbent"))
	}

	parallelCases(ctx, *quick, add)

	if err := deltaCases(ctx, add); err != nil {
		return err
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s", *out)
	return nil
}

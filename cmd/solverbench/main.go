// Command solverbench times the MILP solver hot path on the
// deterministic benchprobs instances and writes the results as JSON —
// by convention to BENCH_solver.json at the repository root, which CI
// uploads as a build artifact. The cases mirror the in-tree
// `go test -bench MILP` benchmarks in internal/core, so numbers from
// either source are comparable.
//
// "Legacy" entries run the pre-incremental solver configuration (cold
// two-phase LP solve per node, weak symmetry rows only); "warm" entries
// run the shipped incremental configuration. The 32-receiver
// feasibility instance has no runnable legacy entry: that path does not
// finish even its root LP relaxation in tens of minutes, which is
// recorded as a skipped case rather than silently dropped.
//
// Usage:
//
//	solverbench                  # full suite, writes BENCH_solver.json
//	solverbench -quick -out /tmp/b.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"os"
	"testing"
	"time"

	"repro/internal/benchprobs"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/milp"
	"repro/internal/trace"
)

type caseResult struct {
	Name        string `json:"name"`
	Config      string `json:"config"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	Nodes       int64  `json:"milp_nodes"`
	MaxDepth    int64  `json:"max_depth"`
	Incumbents  int64  `json:"incumbents"`
	WarmSolves  int64  `json:"warm_solves"`
	ColdSolves  int64  `json:"cold_solves"`
	DualPivots  int64  `json:"dual_pivots"`
	LPIters     int64  `json:"lp_iterations"`
	Skipped     bool   `json:"skipped,omitempty"`
	Note        string `json:"note,omitempty"`
}

type report struct {
	GeneratedBy string       `json:"generated_by"`
	Timestamp   string       `json:"timestamp"`
	Cases       []caseResult `json:"cases"`
}

// benchCase runs one solver configuration under testing.Benchmark and
// folds the per-iteration solver statistics into the result.
func benchCase(ctx context.Context, name string, a *trace.Analysis, numBuses int, sym core.SymmetryLevel, optimize bool, opts milp.Options, config string) caseResult {
	conflicts := core.BuildConflicts(a, core.DefaultOptions())
	fr := core.NewFormulator(a, conflicts, 4, sym)
	f := fr.ForBusCount(numBuses, optimize)
	opts.FirstFeasible = !optimize

	var nodes, depth, incumbents, warm, cold, pivots, lpIters, iters int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := milp.SolveCtx(ctx, f.Problem, opts)
			if err != nil {
				b.Fatal(err)
			}
			nodes += int64(sol.Nodes)
			if d := int64(sol.MaxDepth); d > depth {
				depth = d
			}
			incumbents += sol.Incumbents
			warm += sol.WarmSolves
			cold += sol.ColdSolves
			pivots += sol.DualPivots
			lpIters += sol.LPIterations
			iters++
		}
	})
	if iters == 0 {
		return caseResult{Name: name, Config: config, Skipped: true, Note: "benchmark did not run"}
	}
	return caseResult{
		Name:        name,
		Config:      config,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Nodes:       nodes / iters,
		MaxDepth:    depth,
		Incumbents:  incumbents / iters,
		WarmSolves:  warm / iters,
		ColdSolves:  cold / iters,
		DualPivots:  pivots / iters,
		LPIters:     lpIters / iters,
	}
}

var (
	out   = flag.String("out", "BENCH_solver.json", "output JSON path")
	quick = flag.Bool("quick", false, "skip the multi-second 32-receiver feasible case")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("solverbench: ")
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() (err error) {
	ctx, stop := cli.Context(0)
	defer stop()

	stopProf, err := cli.StartProfiling()
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, stopProf()) }()

	ctx, stopObs, err := cli.StartObs(ctx)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, stopObs()) }()

	a12 := benchprobs.Analysis12()
	a32 := benchprobs.Analysis32()
	a8 := benchprobs.Analysis8()

	legacy := milp.Options{Cold: true}
	warm := milp.Options{}

	var rep report
	rep.GeneratedBy = "cmd/solverbench"
	rep.Timestamp = time.Now().UTC().Format(time.RFC3339)

	add := func(c caseResult) {
		rep.Cases = append(rep.Cases, c)
		if c.Skipped {
			log.Printf("%-28s %-14s skipped: %s", c.Name, c.Config, c.Note)
			return
		}
		log.Printf("%-28s %-14s %12d ns/op %8d nodes %3d deep %4d inc %6d warm %6d cold %8d lp-iters",
			c.Name, c.Config, c.NsPerOp, c.Nodes, c.MaxDepth, c.Incumbents, c.WarmSolves, c.ColdSolves, c.LPIters)
	}

	add(benchCase(ctx, "feasible-12rx-4bus", a12, 4, core.SymWeak, false, legacy, "legacy"))
	add(benchCase(ctx, "feasible-12rx-4bus", a12, 4, core.SymFull, false, warm, "warm"))
	add(caseResult{
		Name: "feasible-32rx-12bus", Config: "legacy", Skipped: true,
		Note: "the cold per-node solver does not finish the root LP relaxation of this instance (observed >50 min without completing); the warm entry below is the replacement this tool exists to measure",
	})
	if *quick {
		add(caseResult{Name: "feasible-32rx-12bus", Config: "warm", Skipped: true, Note: "-quick"})
	} else {
		add(benchCase(ctx, "feasible-32rx-12bus", a32, 12, core.SymFull, false, warm, "warm"))
	}
	add(benchCase(ctx, "infeasible-32rx-8bus-root", a32, 8, core.SymFull, false, warm, "warm"))
	add(benchCase(ctx, "binding-8rx-3bus", a8, 3, core.SymWeak, true, legacy, "legacy"))
	add(benchCase(ctx, "binding-8rx-3bus", a8, 3, core.SymFull, true, warm, "warm"))

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s", *out)
	return nil
}

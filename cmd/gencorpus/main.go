// Command gencorpus regenerates the checked-in fuzz seed corpora under
// each package's testdata/fuzz directory. The files mirror the f.Add
// seeds of the fuzz targets — including the regression inputs for the
// bugs the harness found — so `go test -run=Fuzz ./...` exercises them
// even on toolchains that skip in-source seeds, and so crashes minimized
// by future fuzzing sessions have a stable home next to them.
//
// Usage (from the repository root):
//
//	go run ./cmd/gencorpus
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/stbus"
	"repro/internal/trace"
)

// entry is one corpus file: a name and the fuzz-argument values in
// target order. Supported value types: []byte and int64.
type entry struct {
	name string
	vals []any
}

func main() {
	root := flag.String("root", ".", "repository root to write testdata under")
	flag.Parse()

	corpora := map[string][]entry{
		"internal/trace/testdata/fuzz/FuzzAnalyze":          analyzeSeeds(),
		"internal/trace/testdata/fuzz/FuzzShardedAnalyze":   shardedSeeds(),
		"internal/trace/testdata/fuzz/FuzzTraceEncode":      encodeSeeds(),
		"internal/stbus/testdata/fuzz/FuzzNetlistRoundTrip": netlistSeeds(),
		"internal/check/testdata/fuzz/FuzzDesignTrace":      designSeeds(),
	}
	for dir, entries := range corpora {
		full := filepath.Join(*root, dir)
		if err := os.MkdirAll(full, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, e := range entries {
			if err := os.WriteFile(filepath.Join(full, e.name), marshal(e.vals), 0o644); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%s: %d seeds\n", dir, len(entries))
	}
}

// marshal renders values in the `go test fuzz v1` corpus file format.
func marshal(vals []any) []byte {
	var b bytes.Buffer
	b.WriteString("go test fuzz v1\n")
	for _, v := range vals {
		switch v := v.(type) {
		case []byte:
			fmt.Fprintf(&b, "[]byte(%s)\n", strconv.Quote(string(v)))
		case int64:
			fmt.Fprintf(&b, "int64(%d)\n", v)
		default:
			log.Fatalf("unsupported corpus value type %T", v)
		}
	}
	return b.Bytes()
}

// fuzzEvent encodes one decodeFuzzTrace event record (19 bytes) in the
// raw form, mirroring the helper in internal/trace's fuzz harness.
func fuzzEvent(start, length int64, recv, sender byte, critical bool) []byte {
	var ev [19]byte
	binary.LittleEndian.PutUint64(ev[0:8], uint64(start))
	binary.LittleEndian.PutUint64(ev[8:16], uint64(length))
	ev[16] = 2 // raw form
	if critical {
		ev[16] |= 1
	}
	ev[17] = sender
	ev[18] = recv
	return ev[:]
}

func analyzeSeeds() []entry {
	// Adversarial seeds target the sweep kernel's corner cases: ties in
	// the deactivation order, credits flush with window edges, maximum
	// pair fan-out, and an active bitset wider than one 64-bit word.
	coincident := []byte{2, 0, 64, 0}
	coincident = append(coincident, fuzzEvent(8, 8, 0, 0, true)...)
	coincident = append(coincident, fuzzEvent(8, 8, 1, 0, false)...)
	coincident = append(coincident, fuzzEvent(16, 8, 2, 0, true)...)
	aligned := []byte{2, 0, 100, 0}
	aligned = append(aligned, fuzzEvent(10, 10, 0, 0, false)...)
	aligned = append(aligned, fuzzEvent(20, 10, 1, 0, true)...)
	aligned = append(aligned, fuzzEvent(10, 20, 2, 0, false)...)
	allActive := []byte{7, 0, 64, 0}
	for r := byte(0); r < 8; r++ {
		allActive = append(allActive, fuzzEvent(int64(r), 32, r, 0, r%2 == 0)...)
	}
	wide := []byte{95, 0, 200, 0}
	wide = append(wide, fuzzEvent(0, 40, 70, 0, true)...)
	wide = append(wide, fuzzEvent(10, 40, 90, 0, false)...)
	wide = append(wide, fuzzEvent(20, 40, 1, 0, true)...)
	return []entry{
		{"empty-trace", []any{[]byte{3, 1, 40, 0}, int64(10)}},
		{"one-event", []any{append([]byte{2, 1, 64, 0},
			fuzzEvent(0, 8, 0, 0, false)...), int64(7)}},
		{"giant-window", []any{[]byte{5, 2, 100, 0}, int64(math.MaxInt64)}},
		// A raw-form event whose Start+Len overflows int64: the
		// regression input for the Validate overflow bug.
		{"overflow-event", []any{append([]byte{2, 1, 64, 0},
			fuzzEvent(5, math.MaxInt64-2, 0, 0, false)...), int64(16)}},
		{"coincident-endpoints", []any{coincident, int64(8)}},
		{"window-aligned-ends", []any{aligned, int64(10)}},
		{"all-receivers-active", []any{allActive, int64(16)}},
		{"wide-bitset", []any{wide, int64(25)}},
	}
}

func shardedSeeds() []entry {
	// Mirror FuzzShardedAnalyze's in-source seeds: cut-straddling
	// grants, clustered events leaving most shards empty, more shards
	// than windows, and the auto shard count on a wide bitset.
	straddle := append([]byte{2, 1, 200, 0}, fuzzEvent(0, 200, 0, 0, true)...)
	straddle = append(straddle, fuzzEvent(50, 100, 1, 0, false)...)
	cluster := []byte{4, 1, 255, 15}
	for r := byte(0); r < 4; r++ {
		cluster = append(cluster, fuzzEvent(int64(r), 6, r, 0, r%2 == 0)...)
	}
	wide := []byte{95, 0, 200, 0}
	wide = append(wide, fuzzEvent(0, 150, 70, 0, true)...)
	wide = append(wide, fuzzEvent(10, 120, 90, 0, false)...)
	return []entry{
		{"empty-trace", []any{[]byte{3, 1, 40, 0}, int64(10), int64(2)}},
		{"straddles-every-cut", []any{straddle, int64(25), int64(7)}},
		{"clustered-empty-shards", []any{cluster, int64(16), int64(8)}},
		{"more-shards-than-windows", []any{append([]byte{2, 1, 64, 0},
			fuzzEvent(0, 8, 0, 0, false)...), int64(math.MaxInt64), int64(6)}},
		{"auto-shards-wide-bitset", []any{wide, int64(25), int64(0)}},
	}
}

func encodeSeeds() []entry {
	valid := &trace.Trace{NumReceivers: 2, NumSenders: 1, Horizon: 32, Events: []trace.Event{
		{Start: 0, Len: 4, Sender: 0, Receiver: 0, Critical: true},
		{Start: 8, Len: 2, Sender: 0, Receiver: 1},
	}}
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, valid); err != nil {
		log.Fatal(err)
	}
	// Header declaring 2^27 events with no payload: the regression
	// input for the decoder preallocation bomb.
	hdr := append([]byte("STBT"), make([]byte, 28)...)
	binary.LittleEndian.PutUint32(hdr[4:], 1)
	binary.LittleEndian.PutUint32(hdr[8:], 2)
	binary.LittleEndian.PutUint32(hdr[12:], 1)
	binary.LittleEndian.PutUint64(hdr[16:], 32)
	binary.LittleEndian.PutUint64(hdr[24:], 1<<27)
	var v2buf bytes.Buffer
	if err := trace.WriteBinaryV2(&v2buf, valid); err != nil {
		log.Fatal(err)
	}
	return []entry{
		{"valid-trace", []any{buf.Bytes()}},
		{"valid-trace-v2", []any{v2buf.Bytes()}},
		{"event-count-bomb", []any{hdr}},
		{"magic-only", []any{[]byte("STBT")}},
		{"empty", []any{[]byte{}}},
	}
}

func netlistSeeds() []entry {
	req := stbus.Partial(3, []int{0, 1, 0, 1})
	resp := stbus.Partial(4, []int{0, 0, 1})
	nl, err := stbus.GenerateNetlist("fuzz-seed", req, resp)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nl.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	// The regression input for the allocation bomb: an absurd receiver
	// count that used to reach make([]int, numReceivers) unchecked.
	bomb := []byte(`{"name":"x","request":{"kind":"partial","arbitration":"round-robin",` +
		`"num_senders":1,"num_receivers":1000000000000,"buses":[{"name":"b","arbiter":"a","receivers":[0]}]},` +
		`"response":{"num_senders":1,"num_receivers":1,"buses":[{"receivers":[0]}]}}`)
	return []entry{
		{"valid-netlist", []any{buf.Bytes()}},
		{"receiver-count-bomb", []any{bomb}},
		{"empty-object", []any{[]byte(`{}`)}},
		{"not-json", []any{[]byte(`not json`)}},
	}
}

func designSeeds() []entry {
	return []entry{
		{"small-problem", []any{[]byte{3, 1, 40, 0, 2, 0x13, 0, 0, 8, 0, 0, 2, 5, 0, 6, 0, 1, 4}}},
		{"no-events", []any{[]byte{5, 2, 100, 0, 0, 0x31}}},
		{"single-receiver", []any{[]byte{1, 1, 16, 0, 5, 0x02}}},
	}
}

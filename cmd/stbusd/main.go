// Command stbusd is the design-as-a-service daemon: a long-running
// HTTP server that designs STbus crossbars on demand. Clients POST a
// traffic trace (binary or JSON) or a named benchmark application to
// /v1/design and receive the designed crossbar as JSON; every job runs
// through the shared content-addressed design cache, so repeated
// identical requests are served in microseconds and near-identical
// ones warm-start the solver.
//
// Endpoints:
//
//	POST /v1/design            submit a design job (sync by default, ?async=1 for 202 + polling)
//	GET  /v1/jobs/{id}         job status / result
//	GET  /v1/jobs/{id}/events  per-job solver progress as SSE (replay + live)
//	GET  /v1/stats             queue and worker-pool statistics
//	GET  /healthz              liveness (503 while draining)
//
// Usage:
//
//	stbusd -addr :8377 -cache-dir /var/cache/stbusd
//	curl -s --data-binary @mat2.req.trc 'localhost:8377/v1/design?window=800'
//	curl -s -H 'Content-Type: application/json' -d '{"app":"mat2"}' localhost:8377/v1/design
//
// SIGTERM/SIGINT drain gracefully: admission stops (503), in-flight
// jobs finish within -drain-timeout (stragglers are canceled), then
// the listener closes. The shared observability flags apply: add
// -metrics-addr for the Prometheus/SSE telemetry surface and
// -flight-out for a daemon-wide flight recording.
package main

import (
	"context"
	"flag"
	"log"
	"net"

	"repro/internal/cache"
	"repro/internal/cli"
	"repro/internal/server"
)

var (
	addr         = flag.String("addr", ":8377", "HTTP listen address of the design API")
	concurrency  = flag.Int("jobs", 0, "design jobs solved concurrently (0 = all CPU cores)")
	queueDepth   = flag.Int("queue", 64, "admitted-but-not-running job bound; a full queue answers 429")
	defTimeout   = flag.Duration("default-timeout", 0, "per-job solve budget when the request names none (0 = 60s)")
	maxTimeout   = flag.Duration("max-timeout", 0, "upper clamp on per-request timeouts (0 = 10m)")
	maxNodes     = flag.Int64("max-nodes", 0, "upper clamp on per-job solver node budgets (0 = engine default)")
	drainTimeout = flag.Duration("drain-timeout", 0, "graceful-drain budget on SIGTERM before in-flight jobs are canceled (0 = 15s)")
	maxBody      = flag.Int64("max-body", 0, "request body size bound in bytes (0 = 64 MiB)")
	spoolLimit   = flag.Int64("spool-threshold", 0, "binary trace bodies above this many bytes are spooled to disk and analyzed out-of-core via the sharded driver (0 = 8 MiB, negative = always decode in memory)")
	spoolDir     = flag.String("spool-dir", "", "directory for spooled trace bodies (empty = system temp dir)")
	history      = flag.Int("history", 0, "finished jobs kept pollable (0 = 512)")
	cacheDir     = flag.String("cache-dir", "", "design-cache disk tier directory (empty = memory only)")
	cacheEntries = flag.Int("cache-entries", 0, "design-cache in-memory entry bound (0 = default)")
	cacheDelta   = flag.Float64("cache-delta", -2, "warm-start delta tolerance as a cell fraction; 0 = exact hits only, negative = warm tier off, unset = default")
	quiet        = flag.Bool("quiet", false, "suppress per-request logging")
)

func main() { cli.Main("stbusd", run) }

func run(ctx context.Context) error {
	ccfg := cache.Config{Dir: *cacheDir, MaxEntries: *cacheEntries}
	// -2 is the flag's cannot-collide sentinel for "unset": 0 and every
	// negative tolerance the cache distinguishes are -1..1.
	if *cacheDelta != -2 {
		ccfg.MaxDeltaFrac = cache.Delta(*cacheDelta)
	}
	logf := log.Printf
	if *quiet {
		logf = nil
	}
	return server.Run(ctx, server.Config{
		Addr:           *addr,
		Concurrency:    *concurrency,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		MaxNodes:       *maxNodes,
		MaxBody:        *maxBody,
		SpoolThreshold: *spoolLimit,
		SpoolDir:       *spoolDir,
		Shards:         cli.Shards(),
		JobHistory:     *history,
		Workers:        cli.Workers(),
		CacheConfig:    ccfg,
		DrainTimeout:   *drainTimeout,
		Logf:           logf,
	}, func(bound net.Addr) {
		log.Printf("design API on http://%s — POST /v1/design", bound)
	})
}

// Command cachebench times the design-cache primitives of
// internal/cache — exact lookup hit and miss, warm (near-fingerprint)
// lookup, store, and the on-disk tier round trip — and writes the
// results as JSON, by convention to BENCH_cache.json at the repository
// root, which CI uploads as a non-gating build artifact. The subject
// is the same 32-receiver instance the solverbench delta cases use, so
// the µs-scale numbers here can be read against the ms-scale solver
// numbers there: a cache hit must be noise next to any solve.
//
// Usage:
//
//	cachebench                  # writes BENCH_cache.json
//	cachebench -out /tmp/c.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"os"
	"testing"
	"time"

	"repro/internal/benchprobs"
	"repro/internal/cache"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/trace"
)

type caseResult struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

type report struct {
	GeneratedBy string       `json:"generated_by"`
	Timestamp   string       `json:"timestamp"`
	Cases       []caseResult `json:"cases"`
}

var out = flag.String("out", "BENCH_cache.json", "output JSON path")

func main() { cli.Main("cachebench", run) }

func bench(name string, fn func(b *testing.B)) caseResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return caseResult{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func run(ctx context.Context) (err error) {
	tr := benchprobs.DeltaTrace32()
	baseA, err := trace.Analyze(tr, benchprobs.AnalysisWindow)
	if err != nil {
		return err
	}
	// A perturbed sibling: different fingerprint, within the default
	// warm delta budget.
	nearA, err := trace.Analyze(benchprobs.PerturbTrace(tr, 0.01, 7), benchprobs.AnalysisWindow)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.MaxPerBus = 8
	opts.OptimizeBinding = false
	opts.Engine = core.EngineMILP
	// Pinned to one worker so runs compare across hosts; -workers
	// overrides for experiments (the designs are identical either way).
	opts.Workers = 1
	if w := cli.Workers(); w > 0 {
		opts.Workers = w
	}
	design, err := core.DesignCrossbarCtx(ctx, baseA, opts)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "cachebench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	var rep report
	rep.GeneratedBy = "cmd/cachebench"
	rep.Timestamp = time.Now().UTC().Format(time.RFC3339)
	add := func(c caseResult) {
		rep.Cases = append(rep.Cases, c)
		log.Printf("%-24s %10d ns/op %8d B/op %6d allocs/op", c.Name, c.NsPerOp, c.BytesPerOp, c.AllocsPerOp)
	}

	primed := cache.New(cache.Config{})
	primed.Store(ctx, baseA, opts, design)

	add(bench("lookup-hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := primed.Lookup(ctx, baseA, opts); !ok {
				b.Fatal("expected a hit")
			}
		}
	}))
	add(bench("lookup-miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := primed.Lookup(ctx, nearA, opts); ok {
				b.Fatal("expected a miss")
			}
		}
	}))
	add(bench("warm-lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if inc := primed.Warm(ctx, nearA, opts); inc == nil {
				b.Fatal("expected a warm hit")
			}
		}
	}))
	add(bench("store-memory", func(b *testing.B) {
		s := cache.New(cache.Config{})
		for i := 0; i < b.N; i++ {
			s.Store(ctx, baseA, opts, design)
		}
	}))
	add(bench("store-disk", func(b *testing.B) {
		s := cache.New(cache.Config{Dir: dir})
		for i := 0; i < b.N; i++ {
			s.Store(ctx, baseA, opts, design)
		}
	}))
	// Disk tier round trip: a fresh Store instance over a populated
	// directory, forced to deserialize and verify the entry each time.
	seed := cache.New(cache.Config{Dir: dir})
	seed.Store(ctx, baseA, opts, design)
	add(bench("lookup-disk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := cache.New(cache.Config{Dir: dir})
			b.StartTimer()
			if _, ok := s.Lookup(ctx, baseA, opts); !ok {
				b.Fatal("expected a disk hit")
			}
		}
	}))

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s", *out)
	return nil
}

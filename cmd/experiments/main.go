// Command experiments regenerates the paper's tables and figures:
// Table 1 (crossbar performance and cost), Table 2 (component
// savings), Figure 4 (relative latencies), Figure 5(a)/(b) (window and
// burst sizing), Figure 6 (overlap threshold), and the Section 7.3
// binding and real-time studies.
//
// Usage:
//
//	experiments -run all
//	experiments -run table2,fig5a -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"strings"

	"repro/internal/cli"
	"repro/internal/experiments"
)

var (
	runList = flag.String("run", "all", "comma-separated: table1, table2, fig4, fig5a, fig5b, fig6, binding, realtime, cost, adaptive, robustness, multiuse, or all")
	seed    = flag.Int64("seed", experiments.Seed, "workload seed")
)

func main() { cli.Main("experiments", run) }

func run(ctx context.Context) (err error) {

	selected := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		selected[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := selected["all"]
	want := func(name string) bool { return all || selected[name] }

	if want("table1") {
		rows, err := experiments.Table1Ctx(ctx, *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Table1Report(rows))
	}
	if want("table2") {
		rows, err := experiments.Table2Ctx(ctx, *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Table2Report(rows))
	}
	if want("fig4") {
		rows, err := experiments.Figure4Ctx(ctx, *seed)
		if err != nil {
			return err
		}
		avgPanel, maxPanel := experiments.Figure4Report(rows)
		fmt.Println(avgPanel)
		fmt.Println(maxPanel)
	}
	if want("fig5a") {
		points, err := experiments.Figure5aCtx(ctx, *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Figure5aReport(points))
	}
	if want("fig5b") {
		points, err := experiments.Figure5bCtx(ctx, *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Figure5bReport(points))
	}
	if want("fig6") {
		points, err := experiments.Figure6Ctx(ctx, *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Figure6Report(points))
	}
	if want("binding") {
		rows, err := experiments.BindingCtx(ctx, *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.BindingReport(rows))
	}
	if want("realtime") {
		res, err := experiments.RealtimeCtx(ctx, *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RealtimeReport(res))
	}
	if want("cost") {
		rows, err := experiments.CostCtx(ctx, *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.CostReport(rows))
	}
	if want("adaptive") {
		rows, err := experiments.AdaptiveCtx(ctx, *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.AdaptiveReport(rows))
	}
	if want("robustness") {
		rows, err := experiments.RobustnessCtx(ctx, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RobustnessReport(rows))
	}
	if want("multiuse") {
		res, err := experiments.MultiUseCtx(ctx, *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.MultiUseReport(res))
	}
	return nil
}

// Command tracestat summarizes a functional traffic trace: per-receiver
// duty cycles (average and peak-window), burst statistics, and the
// pairwise overlap structure that drives the crossbar design. Use it to
// pick analysis parameters (window size relative to bursts, overlap
// threshold) before running xbargen.
//
// With -stream, the binary trace is instead analyzed directly from the
// file without materializing the events, so arbitrarily long traces
// fit in memory bounded by the output tables. -shards N (0 = one per
// CPU core) runs the memory-mapped sharded driver — bit-identical to
// the single pass, with per-shard throughput in the report; -shards 1
// forces the sequential streaming kernel (trace.AnalyzeReader). The
// report then covers the window analysis plus the measured allocation
// footprint.
//
// Usage:
//
//	tracestat -trace mat2.req.trc
//	tracestat -trace mat2.req.trc -window 800
//	tracestat -trace huge.trc -window 800 -stream
//	tracestat -trace huge.trc -window 800 -stream -shards 8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/cli"
	"repro/internal/trace"
)

var (
	tracePath = flag.String("trace", "", "trace file (binary or JSON)")
	window    = flag.Int64("window", 0, "window size for peak-duty analysis (0 = mean burst × 2)")
	jsonTrace = flag.Bool("json", false, "trace file is JSON")
	stream    = flag.Bool("stream", false, "analyze the binary trace by streaming (requires -window > 0; events are never loaded into memory)")
)

func main() { cli.Main("tracestat", run) }

func run(ctx context.Context) (err error) {

	if *tracePath == "" {
		return errors.New("missing -trace")
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	if *stream {
		return runStream(ctx, f, *tracePath)
	}
	var tr *trace.Trace
	if *jsonTrace {
		tr, err = trace.ReadJSON(f)
	} else {
		tr, err = trace.ReadBinary(f)
	}
	if err != nil {
		return err
	}

	bursts := tr.Bursts()
	fmt.Printf("trace: %d senders → %d receivers, %d events, horizon %d cycles\n",
		tr.NumSenders, tr.NumReceivers, len(tr.Events), tr.Horizon)
	fmt.Printf("bursts: %d, mean %.0f cycles, max %d\n", bursts.Count, bursts.MeanLen, bursts.MaxLen)

	ws := *window
	if ws <= 0 {
		ws = int64(bursts.MeanLen * 2)
		if ws < 1 {
			ws = tr.Horizon / 100
		}
		if ws < 1 {
			ws = 1
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	peak, err := tr.PeakWindowDuty(ws)
	if err != nil {
		return err
	}
	duty := tr.DutyCycles()
	fmt.Printf("\nper-receiver duty (window %d cycles):\n", ws)
	fmt.Printf("  %8s  %8s  %8s  %s\n", "receiver", "avg duty", "peak", "burstiness")
	for r := 0; r < tr.NumReceivers; r++ {
		ratio := 0.0
		if duty[r] > 0 {
			ratio = peak[r] / duty[r]
		}
		fmt.Printf("  %8d  %7.1f%%  %7.1f%%  %.1fx\n", r, duty[r]*100, peak[r]*100, ratio)
	}

	fmt.Println("\nburst length histogram (powers of two):")
	bounds, counts := tr.BurstHistogram(1, 12)
	for i := range bounds {
		if counts[i] == 0 {
			continue
		}
		fmt.Printf("  >=%7d cycles: %d\n", bounds[i], counts[i])
	}

	if err := ctx.Err(); err != nil {
		return err
	}
	ov := tr.OverlapFractions()
	fmt.Println("\nheaviest pairwise overlaps (fraction of the lighter stream):")
	type pair struct {
		i, j int
		f    float64
	}
	var pairs []pair
	for i := 0; i < tr.NumReceivers; i++ {
		for j := i + 1; j < tr.NumReceivers; j++ {
			if f := ov.At(i, j); f > 0 {
				pairs = append(pairs, pair{i, j, f})
			}
		}
	}
	// Selection of the top 10 without sorting the whole list is not
	// worth the code; sort simply.
	for a := 0; a < len(pairs); a++ {
		for b := a + 1; b < len(pairs); b++ {
			if pairs[b].f > pairs[a].f {
				pairs[a], pairs[b] = pairs[b], pairs[a]
			}
		}
	}
	if len(pairs) > 10 {
		pairs = pairs[:10]
	}
	for _, p := range pairs {
		fmt.Printf("  r%-3d r%-3d %.0f%%\n", p.i, p.j, p.f*100)
	}
	if len(pairs) == 0 {
		fmt.Println("  (none)")
	}
	return nil
}

// runStream analyzes the binary trace without materializing the events
// — through the mmap-backed sharded driver (default; -shards picks the
// count) or the sequential streaming kernel (-shards 1) — and reports
// the window analysis alongside per-shard throughput and the measured
// allocation footprint.
func runStream(ctx context.Context, f *os.File, path string) error {
	if *jsonTrace {
		return errors.New("-stream reads the binary format only (JSON traces must be loaded; drop -stream)")
	}
	if *window <= 0 {
		return errors.New("-stream needs an explicit -window > 0 (the default window heuristic requires burst statistics, which a single streaming pass does not collect)")
	}

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	var stats trace.ShardStats
	var a *trace.Analysis
	var err error
	if cli.Shards() == 1 {
		a, err = trace.AnalyzeReader(ctx, f, *window)
	} else {
		a, err = trace.AnalyzeFileSharded(ctx, path, *window, cli.Shards(), &stats)
	}
	if err != nil {
		return err
	}

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	nW := a.NumWindows()
	fmt.Printf("streamed analysis: %d receivers, %d windows of %d cycles\n",
		a.NumReceivers, nW, *window)
	if n := len(stats.Shards); n > 0 {
		fmt.Printf("shards: %d (plan %.2fms, merge %.2fms), %.1fM events/s aggregate\n",
			n, float64(stats.PlanNS)/1e6, float64(stats.MergeNS)/1e6, stats.EventsPerSec()/1e6)
		for s, st := range stats.Shards {
			rate := 0.0
			if st.NS > 0 {
				rate = float64(st.Events) / (float64(st.NS) / 1e9)
			}
			fmt.Printf("  shard %2d: %7d windows  %10d events  %8.2fms  %7.1fM ev/s\n",
				s, st.Windows, st.Events, float64(st.NS)/1e6, rate/1e6)
		}
	}
	fmt.Printf("max window load: %d fully-loaded buses\n", a.MaxWindowLoad())
	fmt.Printf("overlap table: %d nonzero cells (fill %.2f%%), critical %d (fill %.2f%%)\n",
		a.Overlap.NNZ(), a.Overlap.FillRatio()*100,
		a.CritOverlap.NNZ(), a.CritOverlap.FillRatio()*100)

	var busiest int
	var busiestCycles int64
	for i := 0; i < a.NumReceivers; i++ {
		var total int64
		for _, v := range a.Comm.Row(i) {
			total += v
		}
		if total > busiestCycles {
			busiest, busiestCycles = i, total
		}
	}
	fmt.Printf("busiest receiver: r%d with %d busy cycles\n", busiest, busiestCycles)

	allocDelta := after.TotalAlloc - before.TotalAlloc
	fmt.Printf("\nmemory: %.1f MiB allocated during analysis, %.1f MiB heap in use after\n",
		float64(allocDelta)/(1<<20), float64(after.HeapInuse)/(1<<20))
	fmt.Println("(the event stream is processed record by record; peak memory is the output tables plus O(receivers) sweep state, independent of trace length)")
	return nil
}

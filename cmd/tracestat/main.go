// Command tracestat summarizes a functional traffic trace: per-receiver
// duty cycles (average and peak-window), burst statistics, and the
// pairwise overlap structure that drives the crossbar design. Use it to
// pick analysis parameters (window size relative to bursts, overlap
// threshold) before running xbargen.
//
// Usage:
//
//	tracestat -trace mat2.req.trc
//	tracestat -trace mat2.req.trc -window 800
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cli"
	"repro/internal/trace"
)

var (
	tracePath = flag.String("trace", "", "trace file (binary or JSON)")
	window    = flag.Int64("window", 0, "window size for peak-duty analysis (0 = mean burst × 2)")
	jsonTrace = flag.Bool("json", false, "trace file is JSON")
	timeout   = flag.Duration("timeout", 0, "abort after this duration (0 = no limit); Ctrl-C also cancels")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracestat: ")
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() (err error) {
	ctx, stop := cli.Context(*timeout)
	defer stop()

	stopProf, err := cli.StartProfiling()
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, stopProf()) }()

	ctx, stopObs, err := cli.StartObs(ctx)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, stopObs()) }()

	if *tracePath == "" {
		return errors.New("missing -trace")
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	var tr *trace.Trace
	if *jsonTrace {
		tr, err = trace.ReadJSON(f)
	} else {
		tr, err = trace.ReadBinary(f)
	}
	if err != nil {
		return err
	}

	bursts := tr.Bursts()
	fmt.Printf("trace: %d senders → %d receivers, %d events, horizon %d cycles\n",
		tr.NumSenders, tr.NumReceivers, len(tr.Events), tr.Horizon)
	fmt.Printf("bursts: %d, mean %.0f cycles, max %d\n", bursts.Count, bursts.MeanLen, bursts.MaxLen)

	ws := *window
	if ws <= 0 {
		ws = int64(bursts.MeanLen * 2)
		if ws < 1 {
			ws = tr.Horizon / 100
		}
		if ws < 1 {
			ws = 1
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	peak, err := tr.PeakWindowDuty(ws)
	if err != nil {
		return err
	}
	duty := tr.DutyCycles()
	fmt.Printf("\nper-receiver duty (window %d cycles):\n", ws)
	fmt.Printf("  %8s  %8s  %8s  %s\n", "receiver", "avg duty", "peak", "burstiness")
	for r := 0; r < tr.NumReceivers; r++ {
		ratio := 0.0
		if duty[r] > 0 {
			ratio = peak[r] / duty[r]
		}
		fmt.Printf("  %8d  %7.1f%%  %7.1f%%  %.1fx\n", r, duty[r]*100, peak[r]*100, ratio)
	}

	fmt.Println("\nburst length histogram (powers of two):")
	bounds, counts := tr.BurstHistogram(1, 12)
	for i := range bounds {
		if counts[i] == 0 {
			continue
		}
		fmt.Printf("  >=%7d cycles: %d\n", bounds[i], counts[i])
	}

	if err := ctx.Err(); err != nil {
		return err
	}
	ov := tr.OverlapFractions()
	fmt.Println("\nheaviest pairwise overlaps (fraction of the lighter stream):")
	type pair struct {
		i, j int
		f    float64
	}
	var pairs []pair
	for i := 0; i < tr.NumReceivers; i++ {
		for j := i + 1; j < tr.NumReceivers; j++ {
			if f := ov.At(i, j); f > 0 {
				pairs = append(pairs, pair{i, j, f})
			}
		}
	}
	// Selection of the top 10 without sorting the whole list is not
	// worth the code; sort simply.
	for a := 0; a < len(pairs); a++ {
		for b := a + 1; b < len(pairs); b++ {
			if pairs[b].f > pairs[a].f {
				pairs[a], pairs[b] = pairs[b], pairs[a]
			}
		}
	}
	if len(pairs) > 10 {
		pairs = pairs[:10]
	}
	for _, p := range pairs {
		fmt.Printf("  r%-3d r%-3d %.0f%%\n", p.i, p.j, p.f*100)
	}
	if len(pairs) == 0 {
		fmt.Println("  (none)")
	}
	return nil
}

// Command stbus-sim runs one of the benchmark applications on a chosen
// STbus configuration, reports cycle-accurate latency statistics, and
// optionally dumps the functional traffic traces for use with xbargen.
//
// Usage:
//
//	stbus-sim -app mat2 -arch full -dump-traces mat2
//	stbus-sim -app synth -burst 2000 -arch shared
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/sim"
	"repro/internal/stbus"
	"repro/internal/trace"
	"repro/internal/vcd"
	"repro/internal/workloads"
)

var (
	appName    = flag.String("app", "mat2", "application: mat1, mat2, fft, qsort, des, synth")
	specPath   = flag.String("spec", "", "JSON workload spec file (overrides -app)")
	arch       = flag.String("arch", "full", "interconnect: full or shared")
	seed       = flag.Int64("seed", 1, "workload seed")
	burst      = flag.Int64("burst", 1000, "nominal burst length for -app synth (cycles)")
	dumpTraces = flag.String("dump-traces", "", "prefix for binary trace dumps (<prefix>.req.trc, <prefix>.resp.trc)")
	asJSON     = flag.Bool("json-traces", false, "dump traces as JSON instead of binary")
	traceFmt   = flag.String("trace-format", "v1", "binary trace container: v1 (fixed 25-byte records) or v2 (columnar delta-encoded, ~5x smaller)")
	vcdOut     = flag.String("vcd", "", "write a VCD waveform of the bus activity to this file")
)

func main() { cli.Main("stbus-sim", run) }

func run(ctx context.Context) (err error) {

	var app *workloads.App
	if *specPath != "" {
		spec, err := readSpecFile(*specPath)
		if err != nil {
			return err
		}
		app, err = spec.Build(*seed)
		if err != nil {
			return err
		}
	} else {
		var err error
		app, err = lookupApp(*appName, *seed, *burst)
		if err != nil {
			return err
		}
	}

	var req, resp *stbus.Config
	switch *arch {
	case "full":
		req, resp = app.FullConfig()
	case "shared":
		req, resp = app.SharedConfig()
	default:
		return fmt.Errorf("unknown -arch %q (want full or shared)", *arch)
	}

	res, err := sim.RunCtx(ctx, app.SimConfig(req, resp))
	if err != nil {
		return err
	}

	s := res.Latency.SummarizePacket()
	tx := res.Latency.Summarize()
	fmt.Printf("%s on %s STbus (%d initiators, %d targets, horizon %d cycles)\n",
		app.Name, *arch, app.NumInitiators, app.NumTargets, app.Horizon)
	fmt.Printf("  transactions: %d (cores completed: %d/%d)\n", s.Count, res.Completed, app.NumInitiators)
	fmt.Printf("  packet latency:      avg %.2f  max %d  p95 %d cycles\n", s.Avg, s.Max, s.P95)
	fmt.Printf("  transaction latency: avg %.2f  max %d  p95 %d cycles\n", tx.Avg, tx.Max, tx.P95)
	fmt.Printf("  request-bus utilization:  %s\n", fmtUtil(res.ReqUtil))
	fmt.Printf("  response-bus utilization: %s\n", fmtUtil(res.RespUtil))

	if *dumpTraces != "" {
		if err := dumpTrace(*dumpTraces+".req.trc", res.ReqTrace, *asJSON); err != nil {
			return err
		}
		if err := dumpTrace(*dumpTraces+".resp.trc", res.RespTrace, *asJSON); err != nil {
			return err
		}
		fmt.Printf("  traces written to %s.req.trc and %s.resp.trc\n", *dumpTraces, *dumpTraces)
	}

	if *vcdOut != "" {
		f, err := os.Create(*vcdOut)
		if err != nil {
			return err
		}
		if err := vcd.FromTraces(f, req, res.ReqTrace, resp, res.RespTrace); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  waveform written to %s\n", *vcdOut)
	}
	return nil
}

// readSpecFile loads a JSON workload spec.
func readSpecFile(path string) (*workloads.Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workloads.ReadSpec(f)
}

func lookupApp(name string, seed, burst int64) (*workloads.App, error) {
	switch strings.ToLower(name) {
	case "mat1":
		return workloads.Mat1(seed), nil
	case "mat2":
		return workloads.Mat2(seed), nil
	case "fft":
		return workloads.FFT(seed), nil
	case "qsort":
		return workloads.QSort(seed), nil
	case "des":
		return workloads.DES(seed), nil
	case "synth":
		return workloads.Synthetic(seed, burst), nil
	}
	return nil, fmt.Errorf("unknown -app %q (want mat1, mat2, fft, qsort, des, synth)", name)
}

func fmtUtil(util []float64) string {
	parts := make([]string, len(util))
	for i, u := range util {
		parts[i] = fmt.Sprintf("%.0f%%", u*100)
	}
	return strings.Join(parts, " ")
}

func dumpTrace(path string, tr *trace.Trace, asJSON bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if asJSON {
		return trace.WriteJSON(f, tr)
	}
	switch *traceFmt {
	case "v1":
		return trace.WriteBinary(f, tr)
	case "v2":
		return trace.WriteBinaryV2(f, tr)
	}
	return fmt.Errorf("-trace-format: unknown %q (want v1 or v2)", *traceFmt)
}

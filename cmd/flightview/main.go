// Command flightview inspects a solver flight recording written by the
// shared -flight-out flag (see internal/cli and internal/obs): the
// NDJSON journal of typed solver events — probes opened and closed,
// incumbents found, node-expansion and LP-pivot batches, portfolio race
// outcomes and cache traffic.
//
// The default mode prints a summary: per-kind event counts, a probe
// table (bus count, phase, outcome, duration, nodes), the incumbent
// staircase, engine node throughput, race outcomes and cache traffic.
// -replay dumps every retained event in emission order; -canon reduces
// the recording to its schedule-invariant canonical form (the shape the
// golden tests diff across worker counts) and re-emits it as NDJSON.
//
// Usage:
//
//	xbargen -trace mat2.req.trc -flight-out run.flight ...
//	flightview -in run.flight
//	flightview -in run.flight -replay
//	flightview -in a.flight -canon > a.canon
//	flightview -in b.flight -canon > b.canon && diff a.canon b.canon
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
)

var (
	inPath = flag.String("in", "", "flight recording to read (NDJSON, written by -flight-out)")
	replay = flag.Bool("replay", false, "dump every retained event in emission order")
	canon  = flag.Bool("canon", false, "emit the schedule-invariant canonical reduction as NDJSON")
)

func main() { cli.Main("flightview", run) }

func run(ctx context.Context) error {
	if *inPath == "" {
		return errors.New("missing -in")
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	events, meta, err := obs.ReadNDJSON(f)
	if err != nil {
		return err
	}
	switch {
	case *canon:
		return writeCanon(events, meta)
	case *replay:
		return writeReplay(events)
	default:
		return writeSummary(events, meta)
	}
}

// writeCanon re-emits the canonical reduction as NDJSON, so two
// recordings of the same problem at different worker counts diff clean.
func writeCanon(events []obs.Event, meta obs.FlightMeta) error {
	reduced := obs.Canonical(events)
	return obs.WriteEventsNDJSON(os.Stdout,
		obs.FlightMeta{Flight: 1, Emitted: int64(len(reduced))}, reduced)
}

func writeReplay(events []obs.Event) error {
	for _, e := range events {
		fmt.Printf("%8d  %12s  %-12s", e.Seq, time.Duration(e.T).Round(time.Microsecond), e.Kind)
		if e.K != 0 {
			fmt.Printf("  k=%d", e.K)
		}
		if e.Val != 0 {
			fmt.Printf("  val=%d", e.Val)
		}
		if e.Aux != 0 {
			fmt.Printf("  aux=%d", e.Aux)
		}
		if e.Who != "" {
			fmt.Printf("  who=%s", e.Who)
		}
		if e.Flag {
			fmt.Printf("  flag")
		}
		fmt.Println()
	}
	return nil
}

// probeKey pairs the logical identity of a probe: its bus count and
// phase. Re-probes of the same count in the same phase (cache warm
// re-solves) are matched open-to-close in order.
type probeKey struct {
	k        int
	optimize bool
}

func writeSummary(events []obs.Event, meta obs.FlightMeta) error {
	fmt.Printf("recording: %d events retained, %d emitted, %d overwritten\n",
		len(events), meta.Emitted, meta.Dropped)
	if len(events) == 0 {
		return nil
	}
	fmt.Printf("span: %s\n", time.Duration(events[len(events)-1].T-events[0].T).Round(time.Microsecond))

	// Per-kind counts.
	counts := map[obs.EventKind]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	fmt.Println("\nevent counts:")
	for k := obs.EventKind(0); ; k++ {
		name := k.String()
		if _, ok := obs.ParseEventKind(name); !ok {
			break
		}
		if counts[k] > 0 {
			fmt.Printf("  %-14s %d\n", name, counts[k])
		}
	}

	// Design runs.
	for _, e := range events {
		switch e.Kind {
		case obs.EvDesignStart:
			fmt.Printf("\ndesign start: %d receivers, engine %s\n", e.Val, e.Who)
		case obs.EvDesignDone:
			fmt.Printf("design done: %d buses, objective %d, %d nodes%s\n",
				e.K, e.Val, e.Aux, cappedSuffix(e.Flag))
		case obs.EvCacheHit:
			fmt.Printf("cache: exact %s hit (%d buses)\n", e.Who, e.K)
		case obs.EvCacheWarm:
			fmt.Printf("cache: warm incumbent (%d buses, %d diff cells)\n", e.K, e.Val)
		case obs.EvCacheStore:
			fmt.Printf("cache: stored design (%d buses)\n", e.K)
		}
	}

	// Probe table: opens matched to closes in order per (k, phase).
	pending := map[probeKey][]obs.Event{}
	type probeRow struct {
		open, close obs.Event
		matched     bool
	}
	var rows []probeRow
	for _, e := range events {
		switch e.Kind {
		case obs.EvProbeOpen:
			pk := probeKey{e.K, e.Flag}
			pending[pk] = append(pending[pk], e)
		case obs.EvProbeClose:
			pk := probeKey{e.K, e.Flag}
			if q := pending[pk]; len(q) > 0 {
				rows = append(rows, probeRow{open: q[0], close: e, matched: true})
				pending[pk] = q[1:]
			} else {
				rows = append(rows, probeRow{close: e})
			}
		}
	}
	if len(rows) > 0 {
		fmt.Println("\nprobes:")
		fmt.Printf("  %4s  %-8s  %-10s  %12s  %12s  %10s\n", "k", "phase", "outcome", "duration", "objective", "nodes")
		for _, r := range rows {
			phase := "feasible?"
			if r.close.Flag {
				phase = "optimize"
			}
			dur := "-"
			if r.matched {
				dur = time.Duration(r.close.T - r.open.T).Round(time.Microsecond).String()
			}
			obj := "-"
			if r.close.Who == "feasible" || r.close.Who == "capped" {
				obj = fmt.Sprint(r.close.Val)
			}
			fmt.Printf("  %4d  %-8s  %-10s  %12s  %12s  %10d\n",
				r.close.K, phase, r.close.Who, dur, obj, r.close.Aux)
		}
	}

	// Incumbent staircase: every improvement, in emission order.
	var haveInc bool
	for _, e := range events {
		if e.Kind != obs.EvIncumbent {
			continue
		}
		if !haveInc {
			fmt.Println("\nincumbent staircase:")
			haveInc = true
		}
		k := "-"
		if e.K != 0 {
			k = fmt.Sprint(e.K)
		}
		fmt.Printf("  %12s  k=%-4s obj=%-8d %s\n",
			time.Duration(e.T).Round(time.Microsecond), k, e.Val, e.Who)
	}

	// Node throughput per engine, plus LP pivots.
	nodesBy := map[string]int64{}
	var pivots int64
	for _, e := range events {
		switch e.Kind {
		case obs.EvNodes:
			nodesBy[e.Who] += e.Val
		case obs.EvLPPivots:
			pivots += e.Val
		}
	}
	if len(nodesBy) > 0 || pivots > 0 {
		fmt.Println("\nsearch effort (batched; tails below one batch not journaled):")
		span := time.Duration(events[len(events)-1].T - events[0].T)
		for _, eng := range []string{"bb", "milp"} {
			if n := nodesBy[eng]; n > 0 {
				rate := ""
				if secs := span.Seconds(); secs > 0 {
					rate = fmt.Sprintf(" (%.0f/s over the recording)", float64(n)/secs)
				}
				fmt.Printf("  %-5s %d nodes%s\n", eng, n, rate)
			}
		}
		if pivots > 0 {
			fmt.Printf("  lp    %d pivots\n", pivots)
		}
	}

	// Race outcomes.
	var haveRace bool
	for _, e := range events {
		switch e.Kind {
		case obs.EvRaceWin, obs.EvRaceCancel:
			if !haveRace {
				fmt.Println("\nportfolio races:")
				haveRace = true
			}
			verb := "won"
			if e.Kind == obs.EvRaceCancel {
				verb = "canceled"
			}
			fmt.Printf("  k=%-4d %s %s\n", e.K, e.Who, verb)
		}
	}
	return nil
}

func cappedSuffix(capped bool) string {
	if capped {
		return " (capped)"
	}
	return ""
}

// Command xbargen designs an STbus crossbar from a functional traffic
// trace (as produced by stbus-sim -dump-traces): it runs the
// window-based analysis, the pre-processing, the feasibility binary
// search and the optimal binding, then prints the resulting
// configuration.
//
// Usage:
//
//	xbargen -trace mat2.req.trc -window 800
//	xbargen -trace mat2.resp.trc -window 800 -threshold 0.4 -maxtb 4 -engine milp
//	xbargen -trace mat2.req.trc -trace-out design.trace.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/cache"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/stbus"
	"repro/internal/trace"
)

var (
	tracePath  = flag.String("trace", "", "trace file (binary or JSON)")
	window     = flag.Int64("window", 0, "analysis window size in cycles (0 = horizon/100)")
	threshold  = flag.Float64("threshold", 0.30, "overlap threshold as a fraction of the window (negative disables)")
	maxtb      = flag.Int("maxtb", 4, "maximum receivers per bus (0 = unlimited)")
	noBind     = flag.Bool("no-binding", false, "skip the optimal-binding phase")
	noCrit     = flag.Bool("no-critical", false, "do not separate overlapping critical streams")
	engine     = flag.String("engine", "bb", "solver engine: bb (branch and bound), milp, anneal, or portfolio (race bb and milp per probe)")
	jsonTrace  = flag.Bool("json", false, "trace file is JSON")
	netlist    = flag.String("netlist", "", "also write a JSON netlist of the designed direction (paired with a full crossbar for the other direction)")
	structural = flag.Bool("structural", false, "print a structural-HDL rendering of the design")
	cacheDir   = flag.String("cache-dir", "", "content-addressed design cache directory: identical (trace, options) runs are served from it, near-identical ones warm-start the solver; results are bit-identical either way")
)

func main() { cli.Main("xbargen", run) }

func run(ctx context.Context) (err error) {

	if *tracePath == "" {
		return errors.New("missing -trace")
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	var tr *trace.Trace
	if *jsonTrace {
		tr, err = trace.ReadJSON(f)
	} else {
		tr, err = trace.ReadBinary(f)
	}
	if err != nil {
		return err
	}

	ws := *window
	if ws <= 0 {
		ws = tr.WindowSizeHint()
	}
	a, err := trace.AnalyzeCtx(ctx, tr, ws)
	if err != nil {
		return err
	}

	opts := core.Options{
		OverlapThreshold: *threshold,
		SeparateCritical: !*noCrit,
		MaxPerBus:        *maxtb,
		OptimizeBinding:  !*noBind,
		Workers:          cli.Workers(),
	}
	if opts.Engine, err = cli.ParseEngine(*engine); err != nil {
		return fmt.Errorf("-engine: %w", err)
	}
	if *cacheDir != "" {
		opts.Cache = cache.New(cache.Config{Dir: *cacheDir})
	}

	d, err := core.DesignCrossbarCtx(ctx, a, opts)
	if err != nil {
		return err
	}

	burst := tr.Bursts()
	fmt.Printf("trace: %d receivers, %d events, horizon %d cycles, mean burst %.0f cycles\n",
		tr.NumReceivers, len(tr.Events), tr.Horizon, burst.MeanLen)
	fmt.Printf("analysis: %d windows of %d cycles, peak windowed demand %d buses\n",
		a.NumWindows(), ws, a.MaxWindowLoad())
	fmt.Printf("design (%s engine): %d buses, %d conflict pairs, max bus overlap %d cycles, %d search nodes\n",
		d.Engine, d.NumBuses, d.Conflicts, d.MaxBusOverlap, d.SearchNodes)
	for b := 0; b < d.NumBuses; b++ {
		fmt.Printf("  bus %d:", b)
		for r, bus := range d.BusOf {
			if bus == b {
				fmt.Printf(" r%d", r)
			}
		}
		fmt.Println()
	}

	if *netlist != "" || *structural {
		designed := stbus.Partial(tr.NumSenders, d.BusOf)
		other := stbus.Full(tr.NumReceivers, tr.NumSenders)
		nl, err := stbus.GenerateNetlist(*tracePath, designed, other)
		if err != nil {
			return err
		}
		if *netlist != "" {
			out, err := os.Create(*netlist)
			if err != nil {
				return err
			}
			if err := nl.WriteJSON(out); err != nil {
				out.Close()
				return err
			}
			if err := out.Close(); err != nil {
				return err
			}
			fmt.Printf("netlist written to %s\n", *netlist)
		}
		if *structural {
			if err := nl.WriteStructural(os.Stdout); err != nil {
				return err
			}
		}
	}
	return nil
}

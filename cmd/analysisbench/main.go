// Command analysisbench times the trace-analysis kernels on the
// deterministic benchprobs.ScaledTrace instances and writes the results
// as JSON — by convention to BENCH_analysis.json at the repository
// root, which CI uploads as a build artifact. The cases mirror the
// in-tree `go test -bench Analyze` benchmarks in internal/trace, so
// numbers from either source are comparable.
//
// Three configurations run per case: "legacy" is the original O(R²)
// pairwise interval-set intersection kernel (retained behind
// trace.AnalyzeLegacy), "sweep" is the single-pass sweep-line kernel
// that replaced it, and "stream" is the same kernel fed the binary
// trace encoding through trace.AnalyzeReader without materializing the
// event slice. Before timing anything, every case's three outputs are
// cross-checked bit-identical; a mismatch aborts the run.
//
// Usage:
//
//	analysisbench                 # standard suite (up to 1M events)
//	analysisbench -full           # adds the 10M-event cases
//	analysisbench -quick -out /tmp/b.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/benchprobs"
	"repro/internal/cli"
	"repro/internal/trace"
)

type caseResult struct {
	Name        string `json:"name"`
	Config      string `json:"config"`
	Receivers   int    `json:"receivers"`
	Events      int    `json:"events"`
	Windows     int    `json:"windows"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	Skipped     bool   `json:"skipped,omitempty"`
	Note        string `json:"note,omitempty"`
}

type report struct {
	GeneratedBy string       `json:"generated_by"`
	Timestamp   string       `json:"timestamp"`
	Cases       []caseResult `json:"cases"`
}

var (
	out   = flag.String("out", "BENCH_analysis.json", "output JSON path")
	quick = flag.Bool("quick", false, "cap cases at 100k events")
	full  = flag.Bool("full", false, "include the 10M-event cases")
)

func main() { cli.Main("analysisbench", run) }

// benchCase times one kernel configuration under testing.Benchmark.
func benchCase(name, config string, tr *trace.Trace, nW int, fn func() error) caseResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fn(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return caseResult{
		Name:        name,
		Config:      config,
		Receivers:   tr.NumReceivers,
		Events:      len(tr.Events),
		Windows:     nW,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func run(ctx context.Context) error {

	receiverCounts := []int{8, 16, 32, 64}
	eventCounts := []int{10_000, 100_000, 1_000_000}
	if *quick {
		eventCounts = []int{10_000, 100_000}
	}
	if *full {
		eventCounts = append(eventCounts, 10_000_000)
	}

	var rep report
	rep.GeneratedBy = "cmd/analysisbench"
	rep.Timestamp = time.Now().UTC().Format(time.RFC3339)

	add := func(c caseResult) {
		rep.Cases = append(rep.Cases, c)
		if c.Skipped {
			log.Printf("%-24s %-8s skipped: %s", c.Name, c.Config, c.Note)
			return
		}
		log.Printf("%-24s %-8s %14d ns/op %12d B/op %8d allocs/op",
			c.Name, c.Config, c.NsPerOp, c.BytesPerOp, c.AllocsPerOp)
	}

	for _, events := range eventCounts {
		for _, receivers := range receiverCounts {
			// The legacy kernel at 10M events and high receiver counts
			// runs for minutes per iteration; one full-scale legacy
			// point (32 receivers) is enough to anchor the comparison.
			legacyTooBig := events >= 10_000_000 && receivers != 32

			name := fmt.Sprintf("%drx-%s", receivers, eventLabel(events))
			tr := benchprobs.ScaledTrace(receivers, events)
			ws := benchprobs.ScaledWindow(tr)
			encoded, err := encodeSorted(tr)
			if err != nil {
				return fmt.Errorf("%s: encoding: %w", name, err)
			}

			// Equivalence gate before timing: all three paths must
			// produce bit-identical analyses on this exact case.
			sweep, err := trace.Analyze(tr, ws)
			if err != nil {
				return fmt.Errorf("%s: sweep: %w", name, err)
			}
			nW := sweep.NumWindows()
			streamed, err := trace.AnalyzeReader(ctx, bytes.NewReader(encoded), ws)
			if err != nil {
				return fmt.Errorf("%s: stream: %w", name, err)
			}
			if diffs := trace.DiffAnalyses(sweep, streamed); len(diffs) > 0 {
				return fmt.Errorf("%s: sweep vs stream disagree:\n%s", name, strings.Join(diffs, "\n"))
			}
			if !legacyTooBig {
				legacy, err := trace.AnalyzeLegacy(tr, ws)
				if err != nil {
					return fmt.Errorf("%s: legacy: %w", name, err)
				}
				if diffs := trace.DiffAnalyses(sweep, legacy); len(diffs) > 0 {
					return fmt.Errorf("%s: sweep vs legacy disagree:\n%s", name, strings.Join(diffs, "\n"))
				}
			}
			sweep, streamed = nil, nil

			if legacyTooBig {
				add(caseResult{
					Name: name, Config: "legacy", Receivers: receivers, Events: events, Windows: nW,
					Skipped: true, Note: "legacy kernel takes minutes per iteration at this scale; the 32rx point anchors the comparison",
				})
			} else {
				add(benchCase(name, "legacy", tr, nW, func() error {
					_, err := trace.AnalyzeLegacy(tr, ws)
					return err
				}))
			}
			add(benchCase(name, "sweep", tr, nW, func() error {
				_, err := trace.Analyze(tr, ws)
				return err
			}))
			add(benchCase(name, "stream", tr, nW, func() error {
				_, err := trace.AnalyzeReader(ctx, bytes.NewReader(encoded), ws)
				return err
			}))
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s", *out)
	return nil
}

func eventLabel(events int) string {
	switch {
	case events >= 1_000_000:
		return fmt.Sprintf("%dM", events/1_000_000)
	case events >= 1_000:
		return fmt.Sprintf("%dk", events/1_000)
	}
	return fmt.Sprint(events)
}

// encodeSorted renders the trace in the binary stream format.
// ScaledTrace emits events already ordered by start, which is what
// AnalyzeReader requires.
func encodeSorted(tr *trace.Trace) ([]byte, error) {
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

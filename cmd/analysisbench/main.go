// Command analysisbench times the trace-analysis kernels on the
// deterministic benchprobs.ScaledTrace instances and writes the results
// as JSON — by convention to BENCH_analysis.json at the repository
// root, which CI uploads as a build artifact. The cases mirror the
// in-tree `go test -bench Analyze` benchmarks in internal/trace, so
// numbers from either source are comparable.
//
// Configurations per case: "legacy" is the original O(R²) pairwise
// interval-set intersection kernel (retained behind
// trace.AnalyzeLegacy), "sweep" is the single-pass sweep-line kernel
// that replaced it, "stream" is the same kernel fed the binary trace
// encoding through trace.AnalyzeReader without materializing the event
// slice, and — on the ≥1M-event cases — "sharded-N" runs the parallel
// sharded driver (trace.AnalyzeSharded) at N shards. Before timing
// anything, every case's outputs are cross-checked bit-identical; a
// mismatch aborts the run.
//
// With -full, an out-of-core case joins the suite: a 100M-event trace
// is streamed into a columnar v2 container on disk (never existing in
// memory as an event slice) and analyzed through the mmap-backed
// trace.AnalyzeFileSharded, equivalence-gated against the streaming
// single-pass reader over the same file. The shared -shards flag picks
// its shard count (0 = one per core).
//
// Usage:
//
//	analysisbench                 # standard suite (up to 1M events)
//	analysisbench -full           # adds the 10M- and out-of-core 100M-event cases
//	analysisbench -quick -out /tmp/b.json
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/benchprobs"
	"repro/internal/cli"
	"repro/internal/trace"
)

type caseResult struct {
	Name        string  `json:"name"`
	Config      string  `json:"config"`
	Receivers   int     `json:"receivers"`
	Events      int     `json:"events"`
	Windows     int     `json:"windows"`
	Shards      int     `json:"shards,omitempty"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MEventsPerS float64 `json:"mevents_per_sec,omitempty"`
	Skipped     bool    `json:"skipped,omitempty"`
	Note        string  `json:"note,omitempty"`
}

type report struct {
	GeneratedBy string       `json:"generated_by"`
	Timestamp   string       `json:"timestamp"`
	Cases       []caseResult `json:"cases"`
}

var (
	out   = flag.String("out", "BENCH_analysis.json", "output JSON path")
	quick = flag.Bool("quick", false, "cap cases at 100k events")
	full  = flag.Bool("full", false, "include the 10M-event cases")
)

func main() { cli.Main("analysisbench", run) }

// benchCase times one kernel configuration under testing.Benchmark.
func benchCase(name, config string, tr *trace.Trace, nW int, fn func() error) caseResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fn(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return caseResult{
		Name:        name,
		Config:      config,
		Receivers:   tr.NumReceivers,
		Events:      len(tr.Events),
		Windows:     nW,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func run(ctx context.Context) error {

	receiverCounts := []int{8, 16, 32, 64}
	eventCounts := []int{10_000, 100_000, 1_000_000}
	if *quick {
		eventCounts = []int{10_000, 100_000}
	}
	if *full {
		eventCounts = append(eventCounts, 10_000_000)
	}

	var rep report
	rep.GeneratedBy = "cmd/analysisbench"
	rep.Timestamp = time.Now().UTC().Format(time.RFC3339)

	add := func(c caseResult) {
		rep.Cases = append(rep.Cases, c)
		if c.Skipped {
			log.Printf("%-24s %-8s skipped: %s", c.Name, c.Config, c.Note)
			return
		}
		log.Printf("%-24s %-8s %14d ns/op %12d B/op %8d allocs/op",
			c.Name, c.Config, c.NsPerOp, c.BytesPerOp, c.AllocsPerOp)
	}

	for _, events := range eventCounts {
		for _, receivers := range receiverCounts {
			// The legacy kernel at 10M events and high receiver counts
			// runs for minutes per iteration; one full-scale legacy
			// point (32 receivers) is enough to anchor the comparison.
			legacyTooBig := events >= 10_000_000 && receivers != 32

			name := fmt.Sprintf("%drx-%s", receivers, eventLabel(events))
			tr := benchprobs.ScaledTrace(receivers, events)
			ws := benchprobs.ScaledWindow(tr)
			encoded, err := encodeSorted(tr)
			if err != nil {
				return fmt.Errorf("%s: encoding: %w", name, err)
			}

			// Equivalence gate before timing: all three paths must
			// produce bit-identical analyses on this exact case.
			sweep, err := trace.Analyze(tr, ws)
			if err != nil {
				return fmt.Errorf("%s: sweep: %w", name, err)
			}
			nW := sweep.NumWindows()
			streamed, err := trace.AnalyzeReader(ctx, bytes.NewReader(encoded), ws)
			if err != nil {
				return fmt.Errorf("%s: stream: %w", name, err)
			}
			if diffs := trace.DiffAnalyses(sweep, streamed); len(diffs) > 0 {
				return fmt.Errorf("%s: sweep vs stream disagree:\n%s", name, strings.Join(diffs, "\n"))
			}
			if !legacyTooBig {
				legacy, err := trace.AnalyzeLegacy(tr, ws)
				if err != nil {
					return fmt.Errorf("%s: legacy: %w", name, err)
				}
				if diffs := trace.DiffAnalyses(sweep, legacy); len(diffs) > 0 {
					return fmt.Errorf("%s: sweep vs legacy disagree:\n%s", name, strings.Join(diffs, "\n"))
				}
			}
			sweep, streamed = nil, nil

			if legacyTooBig {
				add(caseResult{
					Name: name, Config: "legacy", Receivers: receivers, Events: events, Windows: nW,
					Skipped: true, Note: "legacy kernel takes minutes per iteration at this scale; the 32rx point anchors the comparison",
				})
			} else {
				add(benchCase(name, "legacy", tr, nW, func() error {
					_, err := trace.AnalyzeLegacy(tr, ws)
					return err
				}))
			}
			add(benchCase(name, "sweep", tr, nW, func() error {
				_, err := trace.Analyze(tr, ws)
				return err
			}))
			add(benchCase(name, "stream", tr, nW, func() error {
				_, err := trace.AnalyzeReader(ctx, bytes.NewReader(encoded), ws)
				return err
			}))

			// Sharded driver at the sizes where partitioning pays.
			// Each count is equivalence-gated, then timed; one
			// instrumented run per count reports the parallel
			// wall-clock throughput (slowest shard) and split costs.
			if events >= 1_000_000 {
				want, err := trace.Analyze(tr, ws)
				if err != nil {
					return fmt.Errorf("%s: sweep: %w", name, err)
				}
				for _, n := range shardCounts() {
					var stats trace.ShardStats
					sharded, err := trace.AnalyzeShardedCtx(ctx, tr, ws, n, &stats)
					if err != nil {
						return fmt.Errorf("%s: sharded-%d: %w", name, n, err)
					}
					if diffs := trace.DiffAnalyses(want, sharded); len(diffs) > 0 {
						return fmt.Errorf("%s: sweep vs sharded-%d disagree:\n%s", name, n, strings.Join(diffs, "\n"))
					}
					c := benchCase(name, fmt.Sprintf("sharded-%d", n), tr, nW, func() error {
						_, err := trace.AnalyzeSharded(tr, ws, n, nil)
						return err
					})
					c.Shards = len(stats.Shards)
					c.MEventsPerS = stats.EventsPerSec() / 1e6
					c.Note = shardNote(&stats)
					add(c)
				}
			}
		}
	}

	if *full {
		c, err := outOfCoreCase(ctx, 32, 100_000_000)
		if err != nil {
			return err
		}
		add(c)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s", *out)
	return nil
}

func eventLabel(events int) string {
	switch {
	case events >= 1_000_000:
		return fmt.Sprintf("%dM", events/1_000_000)
	case events >= 1_000:
		return fmt.Sprintf("%dk", events/1_000)
	}
	return fmt.Sprint(events)
}

// shardCounts returns the shard counts benchmarked on the large cases:
// 2/4/8 by default, or exactly the shared -shards value when one is
// given (0 keeps the default sweep — "auto" is a deployment knob, not
// a benchmark point).
func shardCounts() []int {
	if n := cli.Shards(); n > 0 {
		return []int{n}
	}
	return []int{2, 4, 8}
}

// shardNote summarizes one instrumented sharded run: split costs and
// the per-shard event spread, the numbers that explain a speedup (or
// its absence) at a glance.
func shardNote(stats *trace.ShardStats) string {
	var slowest, events int64
	for _, st := range stats.Shards {
		events += st.Events
		if st.NS > slowest {
			slowest = st.NS
		}
	}
	return fmt.Sprintf("plan %.2fms merge %.2fms slowest-shard %.2fms, %d event pieces across %d shards",
		float64(stats.PlanNS)/1e6, float64(stats.MergeNS)/1e6, float64(slowest)/1e6, events, len(stats.Shards))
}

// outOfCoreCase builds and times the -full headline case: `events`
// events streamed into a columnar v2 container on disk and analyzed
// through the mmap-backed sharded driver, with the event slice never
// materialized. The result is equivalence-gated against the streaming
// single-pass reader over the same file — the only other path that can
// analyze a trace this size in bounded memory. Timing is one measured
// run (testing.Benchmark would re-run a multi-minute body), with the
// process heap delta standing in for the benchmark allocator columns.
func outOfCoreCase(ctx context.Context, receivers, events int) (caseResult, error) {
	name := fmt.Sprintf("%drx-%s-ooc", receivers, eventLabel(events))
	f, err := os.CreateTemp("", "analysisbench-*.trc")
	if err != nil {
		return caseResult{}, err
	}
	path := f.Name()
	defer os.Remove(path)
	bw := bufio.NewWriterSize(f, 1<<20)
	horizon, err := benchprobs.WriteScaledV2(bw, receivers, events)
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return caseResult{}, fmt.Errorf("%s: generating: %w", name, err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return caseResult{}, err
	}
	log.Printf("%-24s generated %d events, %.1f MiB (%.2f B/event), horizon %d",
		name, events, float64(fi.Size())/(1<<20), float64(fi.Size())/float64(events), horizon)

	// A window a few thousand bursts wide keeps the per-window tables
	// (the analysis output) small against the input: ~16k windows
	// regardless of event count.
	ws := horizon / 16384
	shards := cli.Shards()

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	var stats trace.ShardStats
	t0 := time.Now()
	sharded, err := trace.AnalyzeFileSharded(ctx, path, ws, shards, &stats)
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return caseResult{}, fmt.Errorf("%s: sharded: %w", name, err)
	}

	sf, err := os.Open(path)
	if err != nil {
		return caseResult{}, err
	}
	streamed, err := trace.AnalyzeReader(ctx, sf, ws)
	sf.Close()
	if err != nil {
		return caseResult{}, fmt.Errorf("%s: stream gate: %w", name, err)
	}
	if diffs := trace.DiffAnalyses(streamed, sharded); len(diffs) > 0 {
		return caseResult{}, fmt.Errorf("%s: stream vs sharded disagree:\n%s", name, strings.Join(diffs, "\n"))
	}

	return caseResult{
		Name:        name,
		Config:      fmt.Sprintf("sharded-file-%d", len(stats.Shards)),
		Receivers:   receivers,
		Events:      events,
		Windows:     sharded.NumWindows(),
		Shards:      len(stats.Shards),
		NsPerOp:     elapsed.Nanoseconds(),
		AllocsPerOp: int64(m1.Mallocs - m0.Mallocs),
		BytesPerOp:  int64(m1.TotalAlloc - m0.TotalAlloc),
		MEventsPerS: stats.EventsPerSec() / 1e6,
		Note: fmt.Sprintf("out-of-core mmap ingest of a %.1f MiB v2 file; single measured run; %s",
			float64(fi.Size())/(1<<20), shardNote(&stats)),
	}, nil
}

// encodeSorted renders the trace in the binary stream format.
// ScaledTrace emits events already ordered by start, which is what
// AnalyzeReader requires.
func encodeSorted(tr *trace.Trace) ([]byte, error) {
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

package stbusgen_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	stbusgen "repro"
	"repro/internal/obs"
	"repro/internal/trace"
)

// TestDesignerTraceCoverage runs the full Designer pipeline under a
// tracer and checks the acceptance bar of the telemetry layer: the
// phase spans (simulation, analysis, design, validation) must cover
// nearly all of the root span's wall time, so a trace actually
// explains where a run went.
func TestDesignerTraceCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	d := stbusgen.NewDesigner(stbusgen.DefaultOptions())
	if _, err := d.Design(ctx, stbusgen.Mat2(1)); err != nil {
		t.Fatal(err)
	}

	var rootDur, phaseDur int64
	for _, s := range tr.Spans() {
		switch s.Name {
		case "designer.design":
			rootDur = s.Dur.Nanoseconds()
		case "pipeline.prepare", "pipeline.design", "pipeline.validate":
			phaseDur += s.Dur.Nanoseconds()
		}
	}
	if rootDur == 0 {
		t.Fatal("no designer.design root span recorded")
	}
	coverage := float64(phaseDur) / float64(rootDur)
	t.Logf("phase spans cover %.1f%% of the root span (%dµs of %dµs)",
		coverage*100, phaseDur/1000, rootDur/1000)
	if coverage < 0.95 {
		t.Errorf("phase spans cover %.1f%% of the Designer run, want >= 95%%", coverage*100)
	}

	// The export of a real concurrent run must be loadable JSON.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exported trace does not parse: %v", err)
	}
}

// TestDesignerTracedMatchesUntraced is the determinism guarantee:
// telemetry observes, never steers. The same app designed with and
// without a tracer must produce bit-identical crossbars.
func TestDesignerTracedMatchesUntraced(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	d := stbusgen.NewDesigner(stbusgen.DefaultOptions())
	plain, err := d.Design(context.Background(), stbusgen.Mat2(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := obs.WithTracer(context.Background(), obs.NewTracer())
	traced, err := d.Design(ctx, stbusgen.Mat2(1))
	if err != nil {
		t.Fatal(err)
	}
	if traced.Pair.Req.NumBuses != plain.Pair.Req.NumBuses ||
		traced.Pair.Resp.NumBuses != plain.Pair.Resp.NumBuses {
		t.Fatalf("bus counts differ with tracing: %d+%d vs %d+%d",
			traced.Pair.Req.NumBuses, traced.Pair.Resp.NumBuses,
			plain.Pair.Req.NumBuses, plain.Pair.Resp.NumBuses)
	}
	for i, b := range plain.Pair.Req.BusOf {
		if traced.Pair.Req.BusOf[i] != b {
			t.Fatalf("request binding differs with tracing at receiver %d", i)
		}
	}
	for i, b := range plain.Pair.Resp.BusOf {
		if traced.Pair.Resp.BusOf[i] != b {
			t.Fatalf("response binding differs with tracing at receiver %d", i)
		}
	}
}

// TestDesignerSpanRecordsError: a failed design run annotates its root
// span with the error, so a trace of a failed run explains itself; a
// successful run stays unannotated.
func TestDesignerSpanRecordsError(t *testing.T) {
	// Two receivers overlapping across the whole horizon, zero overlap
	// tolerance, one bus allowed: provably infeasible.
	tr2 := &trace.Trace{NumReceivers: 2, NumSenders: 1, Horizon: 100}
	for r := 0; r < 2; r++ {
		tr2.Events = append(tr2.Events, trace.Event{Start: 0, Len: 100, Receiver: r})
	}
	opts := stbusgen.DefaultOptions()
	opts.OverlapThreshold = 0
	opts.MaxPerBus = 0
	opts.MaxBuses = 1

	rec := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), rec)
	if _, err := stbusgen.NewDesigner(opts).DesignTrace(ctx, tr2, 100); err == nil {
		t.Fatal("infeasible case designed successfully")
	}
	spanAttrs := func(rec *obs.Tracer) map[string]any {
		for _, s := range rec.Spans() {
			if s.Name == "designer.design_trace" {
				m := map[string]any{}
				for _, a := range s.Attrs {
					m[a.Key] = a.Value()
				}
				return m
			}
		}
		t.Fatal("no designer.design_trace span recorded")
		return nil
	}
	attrs := spanAttrs(rec)
	if attrs["error"] != true {
		t.Errorf("failed run not marked on its span: %v", attrs)
	}
	msg, _ := attrs["error_msg"].(string)
	if !strings.Contains(msg, "feasible") {
		t.Errorf("error_msg = %q, want the infeasibility error", msg)
	}

	// Success leaves no error attributes behind.
	opts.MaxBuses = 0
	opts.OverlapThreshold = 0.9
	rec = obs.NewTracer()
	ctx = obs.WithTracer(context.Background(), rec)
	if _, err := stbusgen.NewDesigner(opts).DesignTrace(ctx, tr2, 100); err != nil {
		t.Fatal(err)
	}
	if attrs := spanAttrs(rec); attrs["error"] != nil {
		t.Errorf("successful run carries error attributes: %v", attrs)
	}
}

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 7), plus ablation benches for the design choices
// DESIGN.md calls out. Each benchmark iteration regenerates the full
// result — simulation, analysis, design and validation — so -benchtime
// 1x gives the end-to-end cost of reproducing that artifact.
//
// Run with:
//
//	go test -bench=. -benchmem
package stbusgen_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/sim"
	"repro/internal/stbus"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// BenchmarkTable1 regenerates Table 1 (shared / full / partial crossbar
// performance and cost on Mat2).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(experiments.Seed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (component savings over the five
// benchmark applications).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(experiments.Seed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates Figures 4(a) and 4(b) (relative packet
// latencies of average-flow vs window-based designs).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(experiments.Seed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5a regenerates Figure 5(a) (crossbar size vs window
// size on the synthetic benchmark).
func BenchmarkFigure5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5a(experiments.Seed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5b regenerates Figure 5(b) (acceptable window size vs
// burst size).
func BenchmarkFigure5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5b(experiments.Seed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6 (crossbar size vs overlap
// threshold).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(experiments.Seed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBinding regenerates the Section 7.3 random-vs-optimal
// binding comparison.
func BenchmarkBinding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Binding(experiments.Seed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealtime regenerates the Section 7.3 real-time-stream study.
func BenchmarkRealtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Realtime(experiments.Seed); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation and component benchmarks ---

// mat2Analysis prepares the Mat2 request-direction analysis once.
func mat2Analysis(b *testing.B) *trace.Analysis {
	b.Helper()
	run, err := experiments.Prepare(workloads.Mat2(experiments.Seed))
	if err != nil {
		b.Fatal(err)
	}
	return run.AReq
}

// BenchmarkDesignBranchBound times the specialized exact solver on the
// Mat2 initiator→target design (the paper's CPLEX step).
func BenchmarkDesignBranchBound(b *testing.B) {
	a := mat2Analysis(b)
	opts := core.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DesignCrossbar(a, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignMILP times the literal MILP formulation (Eq. 3–9, 11)
// for comparison with the specialized solver. The instance is a small
// 5-receiver trace: the generic simplex/branch-and-bound path is only
// practical at cross-validation sizes (its per-node dense LP re-solve
// is orders of magnitude more expensive than the specialized search —
// which is the comparison this bench quantifies).
func BenchmarkDesignMILP(b *testing.B) {
	tr := &trace.Trace{NumReceivers: 5, NumSenders: 1, Horizon: 1000}
	for r := 0; r < 5; r++ {
		for k := 0; k < 4; k++ {
			tr.Events = append(tr.Events, trace.Event{
				Start: int64(200*k + 30*r), Len: 40, Receiver: r,
			})
		}
	}
	a, err := trace.Analyze(tr, 200)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Engine = core.EngineMILP
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DesignCrossbar(a, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignNoPreprocessing times the design with the overlap
// threshold pre-processing disabled (ablation: Section 7.4 notes the
// pre-processing also speeds up configuration search).
func BenchmarkDesignNoPreprocessing(b *testing.B) {
	a := mat2Analysis(b)
	opts := core.DefaultOptions()
	opts.OverlapThreshold = -1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DesignCrossbar(a, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignNoBinding times phase 1 only (feasibility binary
// search without the optimal-binding MILP-2 phase).
func BenchmarkDesignNoBinding(b *testing.B) {
	a := mat2Analysis(b)
	opts := core.DefaultOptions()
	opts.OptimizeBinding = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DesignCrossbar(a, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimFullCrossbar times one cycle-accurate full-crossbar
// simulation of Mat2 (the phase-1 trace collection cost).
func BenchmarkSimFullCrossbar(b *testing.B) {
	app := workloads.Mat2(experiments.Seed)
	req, resp := app.FullConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(app.SimConfig(req, resp)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimSharedBus times the shared-bus simulation (the congested
// configuration, exercising arbitration queues).
func BenchmarkSimSharedBus(b *testing.B) {
	app := workloads.Mat2(experiments.Seed)
	req, resp := app.SharedConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(app.SimConfig(req, resp)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowAnalysis times the window-based trace analysis (comm,
// overlap and criticality matrices) on the Mat2 request trace.
func BenchmarkWindowAnalysis(b *testing.B) {
	app := workloads.Mat2(experiments.Seed)
	req, resp := app.FullConfig()
	res, err := sim.Run(app.SimConfig(req, resp))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Analyze(res.ReqTrace, app.WindowSize); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArbitrationPolicies compares round-robin and fixed-priority
// arbitration on the designed Mat2 crossbar (extension ablation); the
// reported metric of interest is the per-policy average packet latency
// logged once per run.
func BenchmarkArbitrationPolicies(b *testing.B) {
	app := workloads.Mat2(experiments.Seed)
	run, err := experiments.Prepare(app)
	if err != nil {
		b.Fatal(err)
	}
	pair, err := run.Design(core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, policy := range []struct {
		name string
		p    stbus.Policy
	}{{"round-robin", stbus.RoundRobin}, {"fixed-priority", stbus.FixedPriority}} {
		b.Run(policy.name, func(b *testing.B) {
			req := stbus.Partial(app.NumInitiators, pair.Req.BusOf)
			resp := stbus.Partial(app.NumTargets, pair.Resp.BusOf)
			req.Arbitration = policy.p
			resp.Arbitration = policy.p
			var avg float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(app.SimConfig(req, resp))
				if err != nil {
					b.Fatal(err)
				}
				avg = res.Latency.SummarizePacket().Avg
			}
			b.ReportMetric(avg, "avg-packet-cycles")
		})
	}
}

// BenchmarkCost regenerates the extension area/power comparison.
func BenchmarkCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Cost(experiments.Seed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptive regenerates the fixed-vs-adaptive window study
// (the paper's future-work extension).
func BenchmarkAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Adaptive(experiments.Seed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignAnneal times the annealing binding engine on the Mat2
// initiator→target instance, for comparison with the exact engines.
func BenchmarkDesignAnneal(b *testing.B) {
	a := mat2Analysis(b)
	opts := core.DefaultOptions()
	opts.Engine = core.EngineAnneal
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DesignCrossbar(a, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteModes compares blocking and posted writes on the
// designed Mat2 crossbar (ablation: STbus supports posted operations;
// the reproduction's default is blocking).
func BenchmarkWriteModes(b *testing.B) {
	app := workloads.Mat2(experiments.Seed)
	run, err := experiments.Prepare(app)
	if err != nil {
		b.Fatal(err)
	}
	pair, err := run.Design(core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		posted bool
	}{{"blocking", false}, {"posted", true}} {
		b.Run(mode.name, func(b *testing.B) {
			req := stbus.Partial(app.NumInitiators, pair.Req.BusOf)
			resp := stbus.Partial(app.NumTargets, pair.Resp.BusOf)
			cfg := app.SimConfig(req, resp)
			cfg.PostedWrites = mode.posted
			var avg float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				avg = res.Latency.SummarizePacket().Avg
			}
			b.ReportMetric(avg, "avg-packet-cycles")
		})
	}
}

// BenchmarkAdapterDelay measures the latency cost of frequency/width
// adapters between heterogeneous cores and the designed Mat2 crossbar.
func BenchmarkAdapterDelay(b *testing.B) {
	app := workloads.Mat2(experiments.Seed)
	run, err := experiments.Prepare(app)
	if err != nil {
		b.Fatal(err)
	}
	pair, err := run.Design(core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, delay := range []int64{0, 1, 2} {
		b.Run(fmt.Sprintf("delay-%d", delay), func(b *testing.B) {
			req := stbus.Partial(app.NumInitiators, pair.Req.BusOf)
			resp := stbus.Partial(app.NumTargets, pair.Resp.BusOf)
			req.AdapterDelay = delay
			resp.AdapterDelay = delay
			cfg := app.SimConfig(req, resp)
			var avg float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				avg = res.Latency.SummarizePacket().Avg
			}
			b.ReportMetric(avg, "avg-packet-cycles")
		})
	}
}

// BenchmarkExploreSweep times the full design-space sweep on QSort.
func BenchmarkExploreSweep(b *testing.B) {
	app := workloads.QSort(experiments.Seed)
	grid := explore.DefaultGrid(app.WindowSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := explore.Sweep(app, grid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiUse regenerates the multi-use-case design study.
func BenchmarkMultiUse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MultiUse(experiments.Seed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRobustness regenerates the seed-robustness study.
func BenchmarkRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Robustness(nil); err != nil {
			b.Fatal(err)
		}
	}
}

package stbusgen_test

import (
	"reflect"
	"testing"

	checkpkg "repro/internal/check"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

// goldenDesign pins the exact output of the default design pipeline on
// one paper benchmark: bus counts, per-receiver bus bindings, and the
// binding objective for both directions.
type goldenDesign struct {
	reqBuses   int
	reqBusOf   []int
	reqOverlap int64

	respBuses   int
	respBusOf   []int
	respOverlap int64
}

// golden holds the designs produced at the time the warm-started MILP
// engine landed, captured with the default options (EngineBranchBound)
// and the published workload seed. The solver rework must not move any
// of these: a changed binding here means the default engine's search is
// no longer deterministic — or no longer optimal — and is a regression
// even if every other test passes.
var golden = map[string]goldenDesign{
	"Mat1": {
		reqBuses: 4, reqBusOf: []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 0, 1}, reqOverlap: 55,
		respBuses: 4, respBusOf: []int{0, 0, 1, 1, 1, 2, 3, 2, 3, 2, 3}, respOverlap: 156,
	},
	"Mat2": {
		reqBuses: 3, reqBusOf: []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 0, 1, 2}, reqOverlap: 269,
		respBuses: 3, respBusOf: []int{2, 0, 0, 1, 1, 1, 0, 2, 2}, respOverlap: 1818,
	},
	"FFT": {
		reqBuses: 7, reqBusOf: []int{0, 4, 5, 6, 1, 3, 2, 3, 5, 4, 1, 0, 2, 0, 2, 0}, reqOverlap: 2971,
		respBuses: 7, respBusOf: []int{6, 0, 5, 1, 3, 2, 4, 2, 6, 4, 5, 3, 0}, respOverlap: 2427,
	},
	"QSort": {
		reqBuses: 3, reqBusOf: []int{0, 0, 1, 1, 2, 2, 0, 1, 2}, reqOverlap: 75,
		respBuses: 3, respBusOf: []int{1, 0, 2, 1, 0, 2}, respOverlap: 141,
	},
	"DES": {
		reqBuses: 3, reqBusOf: []int{1, 2, 0, 1, 0, 2, 1, 2, 0, 1, 0}, reqOverlap: 1813,
		respBuses: 3, respBusOf: []int{1, 0, 0, 1, 1, 2, 2, 0}, respOverlap: 17812,
	},
}

// TestGoldenDesigns regenerates every paper benchmark's design with
// the default options and compares it field by field against the
// pinned golden values.
func TestGoldenDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full golden-design regeneration in -short mode")
	}
	for _, app := range workloads.All(experiments.Seed) {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			want, ok := golden[app.Name]
			if !ok {
				t.Fatalf("no golden design recorded for %s", app.Name)
			}
			run, err := experiments.Prepare(app)
			if err != nil {
				t.Fatal(err)
			}
			pair, err := run.Design(core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			check := func(dir string, d *core.Design, buses int, busOf []int, overlap int64) {
				if d.NumBuses != buses {
					t.Errorf("%s: %d buses, golden %d", dir, d.NumBuses, buses)
				}
				if !reflect.DeepEqual(d.BusOf, busOf) {
					t.Errorf("%s: binding %v, golden %v", dir, d.BusOf, busOf)
				}
				if d.MaxBusOverlap != overlap {
					t.Errorf("%s: max bus overlap %d, golden %d", dir, d.MaxBusOverlap, overlap)
				}
			}
			check("request", pair.Req, want.reqBuses, want.reqBusOf, want.reqOverlap)
			check("response", pair.Resp, want.respBuses, want.respBusOf, want.respOverlap)

			// Beyond bit-identity to the pinned values, every golden
			// design must satisfy the paper constraints as recomputed by
			// the independent auditor.
			opts := core.DefaultOptions()
			if rep := checkpkg.Audit(pair.Req, run.AReq, opts); !rep.OK() {
				t.Errorf("request design fails audit: %v", rep.Err())
			}
			if rep := checkpkg.Audit(pair.Resp, run.AResp, opts); !rep.OK() {
				t.Errorf("response design fails audit: %v", rep.Err())
			}
		})
	}
}

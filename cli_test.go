package stbusgen_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one cmd into dir and returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// TestCLIPipeline drives the full command-line workflow: simulate,
// inspect the trace, design from it, and emit the netlist — the same
// steps a user follows in the README.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()
	simBin := buildTool(t, dir, "stbus-sim")
	genBin := buildTool(t, dir, "xbargen")
	statBin := buildTool(t, dir, "tracestat")

	prefix := filepath.Join(dir, "qsort")
	out := runTool(t, simBin, "-app", "qsort", "-arch", "full", "-dump-traces", prefix)
	if !strings.Contains(out, "QSort on full STbus") {
		t.Errorf("stbus-sim output unexpected:\n%s", out)
	}
	for _, suffix := range []string{".req.trc", ".resp.trc"} {
		if _, err := os.Stat(prefix + suffix); err != nil {
			t.Fatalf("trace file missing: %v", err)
		}
	}

	out = runTool(t, statBin, "-trace", prefix+".req.trc")
	if !strings.Contains(out, "per-receiver duty") {
		t.Errorf("tracestat output unexpected:\n%s", out)
	}

	netlistPath := filepath.Join(dir, "design.json")
	out = runTool(t, genBin,
		"-trace", prefix+".req.trc", "-window", "900",
		"-netlist", netlistPath)
	if !strings.Contains(out, "design (branch-and-bound engine): 3 buses") {
		t.Errorf("xbargen output unexpected (want 3 buses):\n%s", out)
	}
	data, err := os.ReadFile(netlistPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"buses"`) {
		t.Errorf("netlist JSON unexpected:\n%s", data)
	}
}

// TestCLISpecAndVCD drives the custom-workload and waveform paths.
func TestCLISpecAndVCD(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()
	simBin := buildTool(t, dir, "stbus-sim")

	specPath := filepath.Join(dir, "spec.json")
	spec := `{
		"name": "CLITest",
		"arm_cores": 3,
		"iterations": 6,
		"reads": 8, "read_burst": 4,
		"writes": 2, "write_burst": 4,
		"gap": 5, "idle": 300
	}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	vcdPath := filepath.Join(dir, "wave.vcd")
	out := runTool(t, simBin, "-spec", specPath, "-vcd", vcdPath)
	if !strings.Contains(out, "CLITest on full STbus (3 initiators, 6 targets") {
		t.Errorf("spec-driven run unexpected:\n%s", out)
	}
	wave, err := os.ReadFile(vcdPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(wave), "$enddefinitions $end") {
		t.Error("VCD output malformed")
	}
}

// TestCLITraceExport runs the simulate→design flow with -trace-out and
// validates the emitted Chrome trace-event JSON: it must parse, carry
// the expected top-level phase spans, and stay within the trace-event
// schema (X events with non-negative timestamps). This is the CI guard
// against instrumentation rot.
func TestCLITraceExport(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()
	simBin := buildTool(t, dir, "stbus-sim")
	genBin := buildTool(t, dir, "xbargen")

	prefix := filepath.Join(dir, "mat2")
	runTool(t, simBin, "-app", "mat2", "-arch", "full", "-dump-traces", prefix)

	tracePath := filepath.Join(dir, "design.trace.json")
	runTool(t, genBin, "-trace", prefix+".req.trc", "-window", "800", "-trace-out", tracePath)

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, data)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", parsed.DisplayTimeUnit)
	}
	seen := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		seen[e.Name] = true
		if e.Ph != "X" && e.Ph != "M" {
			t.Errorf("unexpected event phase %q", e.Ph)
		}
		if e.Ts < 0 || e.Dur < 0 {
			t.Errorf("event %s has negative time (ts=%v dur=%v)", e.Name, e.Ts, e.Dur)
		}
	}
	for _, want := range []string{"trace.analyze", "core.design", "core.search", "core.probe", "core.bind"} {
		if !seen[want] {
			t.Errorf("trace is missing expected phase span %q (got %v)", want, seen)
		}
	}
}

// TestCLIExperiments smoke-tests the experiment driver on the cheapest
// artifact.
func TestCLIExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()
	expBin := buildTool(t, dir, "experiments")
	out := runTool(t, expBin, "-run", "table1")
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "partial") {
		t.Errorf("experiments output unexpected:\n%s", out)
	}
}

// TestCLIFlightRecording drives the shared -flight-out flag end to end:
// a design run journals its flight events to NDJSON, and flightview
// renders the summary, the replay and the canonical reduction from it.
func TestCLIFlightRecording(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()
	simBin := buildTool(t, dir, "stbus-sim")
	genBin := buildTool(t, dir, "xbargen")
	fvBin := buildTool(t, dir, "flightview")

	prefix := filepath.Join(dir, "mat2")
	runTool(t, simBin, "-app", "mat2", "-arch", "full", "-dump-traces", prefix)

	flightPath := filepath.Join(dir, "run.flight")
	runTool(t, genBin, "-trace", prefix+".req.trc", "-window", "800", "-flight-out", flightPath)
	if fi, err := os.Stat(flightPath); err != nil || fi.Size() == 0 {
		t.Fatalf("flight recording not written: %v", err)
	}

	out := runTool(t, fvBin, "-in", flightPath)
	for _, want := range []string{"recording:", "design start:", "design done:", "probes:"} {
		if !strings.Contains(out, want) {
			t.Errorf("flightview summary missing %q:\n%s", want, out)
		}
	}

	out = runTool(t, fvBin, "-in", flightPath, "-replay")
	for _, want := range []string{"design_start", "probe_close", "design_done"} {
		if !strings.Contains(out, want) {
			t.Errorf("flightview replay missing %q:\n%s", want, out)
		}
	}

	// The canonical reduction must itself be a loadable recording, and
	// reducing it again must be a fixed point.
	canon := runTool(t, fvBin, "-in", flightPath, "-canon")
	canonPath := filepath.Join(dir, "run.canon")
	if err := os.WriteFile(canonPath, []byte(canon), 0o644); err != nil {
		t.Fatal(err)
	}
	if again := runTool(t, fvBin, "-in", canonPath, "-canon"); again != canon {
		t.Errorf("canonical reduction is not a fixed point:\n first: %s\nsecond: %s", canon, again)
	}
}
